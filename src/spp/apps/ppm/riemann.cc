#include "spp/apps/ppm/riemann.h"

#include <algorithm>
#include <cmath>

namespace spp::ppm {

namespace {

double sound_speed(const State& s, double gamma) {
  return std::sqrt(gamma * s.p / s.rho);
}

/// Two-shock wave "mass flux" W(p*) and its derivative for one side.
void shock_w(const State& s, double pstar, double gamma, double& w,
             double& dw) {
  // W = sqrt(rho * ((g+1)/2 p* + (g-1)/2 p))
  const double a = 0.5 * (gamma + 1.0);
  const double b = 0.5 * (gamma - 1.0);
  const double arg = s.rho * (a * pstar + b * s.p);
  w = std::sqrt(std::max(arg, 1e-300));
  dw = 0.5 * s.rho * a / w;
}

/// Toro's f-function for the exact solver (shock or rarefaction branch).
double exact_f(const State& s, double pstar, double gamma, double& df) {
  const double c = sound_speed(s, gamma);
  if (pstar > s.p) {
    // Shock.
    const double ak = 2.0 / ((gamma + 1.0) * s.rho);
    const double bk = (gamma - 1.0) / (gamma + 1.0) * s.p;
    const double root = std::sqrt(ak / (pstar + bk));
    df = root * (1.0 - 0.5 * (pstar - s.p) / (pstar + bk));
    return (pstar - s.p) * root;
  }
  // Rarefaction.
  const double ex = 0.5 * (gamma - 1.0) / gamma;
  const double pr = pstar / s.p;
  df = std::pow(pr, -0.5 * (gamma + 1.0) / gamma) / (s.rho * c);
  return 2.0 * c / (gamma - 1.0) * (std::pow(pr, ex) - 1.0);
}

}  // namespace

StarState two_shock_star(const State& left, const State& right,
                         double gamma) {
  // Initial guess: acoustic (linearized) star pressure.
  const double cl = sound_speed(left, gamma);
  const double cr = sound_speed(right, gamma);
  double pstar = std::max(
      1e-12, 0.5 * (left.p + right.p) -
                 0.125 * (right.u - left.u) * (left.rho + right.rho) *
                     (cl + cr));
  StarState out{pstar, 0.0, 0};
  for (int it = 0; it < 30; ++it) {
    double wl, dwl, wr, dwr;
    shock_w(left, pstar, gamma, wl, dwl);
    shock_w(right, pstar, gamma, wr, dwr);
    // u* from each side must match:
    //   u*_L = uL - (p* - pL)/WL,  u*_R = uR + (p* - pR)/WR
    const double f = (pstar - left.p) / wl + (pstar - right.p) / wr -
                     (left.u - right.u);
    const double df = (wl - (pstar - left.p) * dwl) / (wl * wl) +
                      (wr - (pstar - right.p) * dwr) / (wr * wr);
    const double step = f / std::max(df, 1e-300);
    pstar = std::max(1e-12, pstar - step);
    out.iterations = it + 1;
    if (std::abs(step) < 1e-12 * (pstar + 1e-12)) break;
  }
  double wl, dwl, wr, dwr;
  shock_w(left, pstar, gamma, wl, dwl);
  shock_w(right, pstar, gamma, wr, dwr);
  out.p = pstar;
  out.u = 0.5 * (left.u - (pstar - left.p) / wl + right.u +
                 (pstar - right.p) / wr);
  return out;
}

StarState exact_star(const State& left, const State& right, double gamma) {
  double pstar = two_shock_star(left, right, gamma).p;  // good initial guess
  StarState out{pstar, 0.0, 0};
  for (int it = 0; it < 60; ++it) {
    double dfl, dfr;
    const double fl = exact_f(left, pstar, gamma, dfl);
    const double fr = exact_f(right, pstar, gamma, dfr);
    const double f = fl + fr + (right.u - left.u);
    const double step = f / std::max(dfl + dfr, 1e-300);
    pstar = std::max(1e-12, pstar - step);
    out.iterations = it + 1;
    if (std::abs(step) < 1e-14 * (pstar + 1e-14)) break;
  }
  double dfl, dfr;
  const double fl = exact_f(left, pstar, gamma, dfl);
  const double fr = exact_f(right, pstar, gamma, dfr);
  out.p = pstar;
  out.u = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);
  return out;
}

State exact_sample(const State& left, const State& right, double gamma,
                   double s) {
  const StarState st = exact_star(left, right, gamma);
  const double g1 = (gamma - 1.0) / (gamma + 1.0);

  if (s <= st.u) {
    // Left of the contact.
    const double cl = sound_speed(left, gamma);
    if (st.p > left.p) {
      // Left shock.
      const double sl =
          left.u - cl * std::sqrt(0.5 * (gamma + 1.0) / gamma * st.p / left.p +
                                  0.5 * (gamma - 1.0) / gamma);
      if (s <= sl) return left;
      const double rho =
          left.rho * ((st.p / left.p + g1) / (g1 * st.p / left.p + 1.0));
      return {rho, st.u, st.p};
    }
    // Left rarefaction.
    const double cstar = cl * std::pow(st.p / left.p,
                                       0.5 * (gamma - 1.0) / gamma);
    const double head = left.u - cl;
    const double tail = st.u - cstar;
    if (s <= head) return left;
    if (s >= tail) {
      const double rho = left.rho * std::pow(st.p / left.p, 1.0 / gamma);
      return {rho, st.u, st.p};
    }
    // Inside the fan.
    const double c = g1 * (left.u - s) + (1.0 - g1) * cl;
    const double u = s + c;
    const double rho = left.rho * std::pow(c / cl, 2.0 / (gamma - 1.0));
    const double p = left.p * std::pow(c / cl, 2.0 * gamma / (gamma - 1.0));
    return {rho, u, p};
  }

  // Right of the contact (mirror).
  const double cr = sound_speed(right, gamma);
  if (st.p > right.p) {
    const double sr =
        right.u + cr * std::sqrt(0.5 * (gamma + 1.0) / gamma * st.p / right.p +
                                 0.5 * (gamma - 1.0) / gamma);
    if (s >= sr) return right;
    const double rho =
        right.rho * ((st.p / right.p + g1) / (g1 * st.p / right.p + 1.0));
    return {rho, st.u, st.p};
  }
  const double cstar =
      cr * std::pow(st.p / right.p, 0.5 * (gamma - 1.0) / gamma);
  const double head = right.u + cr;
  const double tail = st.u + cstar;
  if (s >= head) return right;
  if (s <= tail) {
    const double rho = right.rho * std::pow(st.p / right.p, 1.0 / gamma);
    return {rho, st.u, st.p};
  }
  const double c = g1 * (s - right.u) + (1.0 - g1) * cr;
  const double u = s - c;
  const double rho = right.rho * std::pow(c / cr, 2.0 / (gamma - 1.0));
  const double p = right.p * std::pow(c / cr, 2.0 * gamma / (gamma - 1.0));
  return {rho, u, p};
}

std::array<double, 4> godunov_flux(const State& left, const State& right,
                                   double vt_left, double vt_right,
                                   double gamma) {
  const StarState st = two_shock_star(left, right, gamma);

  // Sample the two-shock fan at x/t = 0.
  State w;   // state at the interface
  double vt; // transverse velocity advected with the contact
  if (st.u >= 0) {
    vt = vt_left;
    const double wl =
        std::sqrt(left.rho * (0.5 * (gamma + 1.0) * st.p +
                              0.5 * (gamma - 1.0) * left.p));
    const double sl = left.u - wl / left.rho;  // left shock speed
    if (sl >= 0) {
      w = left;
    } else {
      const double rho = 1.0 / (1.0 / left.rho - (st.p - left.p) / (wl * wl));
      w = {rho, st.u, st.p};
    }
  } else {
    vt = vt_right;
    const double wr =
        std::sqrt(right.rho * (0.5 * (gamma + 1.0) * st.p +
                               0.5 * (gamma - 1.0) * right.p));
    const double sr = right.u + wr / right.rho;
    if (sr <= 0) {
      w = right;
    } else {
      const double rho =
          1.0 / (1.0 / right.rho - (st.p - right.p) / (wr * wr));
      w = {rho, st.u, st.p};
    }
  }

  const double e =
      w.p / (gamma - 1.0) + 0.5 * w.rho * (w.u * w.u + vt * vt);
  return {w.rho * w.u, w.rho * w.u * w.u + w.p, w.rho * w.u * vt,
          (e + w.p) * w.u};
}

}  // namespace spp::ppm
