// 2D unstructured FEM gas dynamics (section 5.2): first-order in space
// (lumped mass matrix) and time, compressible Euler equations on linear
// triangles, with the three classes of global communication the paper calls
// out:
//
//   1. a global MAX reduction for the stable time step;
//   2. gathers from mesh points to element vertices (element phase);
//   3. aggregation from element vertices back to points -- the "scatter-add
//      problem" -- implemented point-centrically via the point->element
//      adjacency so it is deterministic and lock-free.
//
// The discrete scheme is a Galerkin element residual with Rusanov (local
// Lax-Friedrichs) stabilization:
//
//   r_k^T = -A_T (Fbar_x bx_k + Fbar_y by_k) + alpha_T (ubar - u_k) / 3
//
// which conserves mass/momentum/energy exactly on a periodic mesh (element
// residuals sum to zero) and preserves free streams (constant states have
// zero residual).  Update: u_k += dt / m_k * sum_{T incident to k} r_k^T.
//
// Two codings of the same numerics are provided, matching Figure 7's
// "small1" and "small2" curves:
//   * kStoreResiduals  -- element phase writes residuals to an element
//                         array; point phase gathers them (more traffic,
//                         less compute);
//   * kRecompute       -- the point phase recomputes each incident element's
//                         residual (redundant flux calculations, the
//                         transformation section 5.2.2 describes applying on
//                         the C90).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spp/apps/fem/mesh.h"
#include "spp/ckpt/durable.h"
#include "spp/rt/garray.h"
#include "spp/rt/runtime.h"
#include "spp/rt/sync.h"

namespace spp::fem {

enum class Coding { kStoreResiduals, kRecompute };

struct FemConfig {
  std::uint32_t nx = 96, ny = 64;  ///< quad grid (mesh has 2*nx*ny elements).
  double gamma = 1.4;
  double cfl = 0.35;
  unsigned steps = 10;
  Coding coding = Coding::kStoreResiduals;
  bool morton = true;
  /// Checkpoint the point state every K steps (0 = off); with faults
  /// injected the run rolls back to the last epoch after a CPU fail-stop
  /// and replays, ending bit-exact with the fault-free run
  /// (docs/RECOVERY.md).
  unsigned ckpt_interval = 0;
};

struct FemDiagnostics {
  double total_mass = 0;
  double total_mom_x = 0;
  double total_mom_y = 0;
  double total_energy = 0;
  double min_density = 0;
  double min_pressure = 0;
};

struct FemResult {
  sim::Time sim_time = 0;
  double flops = 0;
  double mflops = 0;
  double point_updates = 0;
  /// The paper's headline metric: point updates per microsecond.
  double updates_per_usec = 0;
  FemDiagnostics initial;
  FemDiagnostics final;
};

/// The paper's measured conversion factor: "437 floating point operations
/// per point update (220 floating point operations/element update)".
inline constexpr double kFlopsPerPointUpdate = 437.0;
inline constexpr double kFlopsPerElementUpdate = 220.0;

class FemGas {
 public:
  FemGas(rt::Runtime& rt, const FemConfig& cfg, unsigned nthreads,
         rt::Placement placement);

  /// Uniform flow (free-stream preservation tests).
  void init_uniform(double rho, double ux, double uy, double pressure);
  /// Gaussian pressure blast in a quiescent medium.
  void init_blast(double p_peak, double radius);

  FemResult run();

  /// Durable variant of run(): epoch-sized chunks under a
  /// ckpt::DurableSession (capture + disk commit + machine power-cycle at
  /// every boundary; docs/RECOVERY.md).  With spec.resume the run continues
  /// from the newest valid disk epoch and reaches the same final digest as
  /// an uninterrupted durable run.
  FemResult run_durable(const ckpt::DurableSpec& spec);

  FemDiagnostics diagnostics() const;

  const Mesh& mesh() const { return mesh_; }
  /// Conserved state of point p (uncharged), components rho, mx, my, E.
  std::array<double, 4> state(std::size_t p) const;

 private:
  double wave_speed_phase(unsigned tid, unsigned nthreads);  ///< local max.
  void element_phase(unsigned tid, unsigned nthreads);
  void point_phase(unsigned tid, unsigned nthreads, double dt);
  /// Residual of element e at its k-th vertex (pure function of the state).
  /// `from_old` reads the frozen copy of u (kRecompute coding), keeping the
  /// update Jacobi-style and conservative regardless of thread count.
  std::array<double, 4> element_residual(std::size_t e, int k, bool charged,
                                         bool from_old = false) const;
  void copy_state_phase(unsigned tid, unsigned nthreads);

  rt::Runtime& rt_;
  FemConfig cfg_;
  unsigned nthreads_;
  rt::Placement placement_;
  Mesh mesh_;

  // Point state (4 conserved components) and geometry, globally shared.
  std::unique_ptr<rt::GlobalArray<double>> u_;     ///< 4 * npoints.
  std::unique_ptr<rt::GlobalArray<double>> uold_;  ///< frozen copy (kRecompute).
  std::unique_ptr<rt::GlobalArray<double>> res_;   ///< 12 * nelements.
  std::unique_ptr<rt::GlobalArray<std::int32_t>> conn_;  ///< 3 * nelements.
  std::unique_ptr<rt::GlobalArray<std::int32_t>> p2e_;   ///< CSR adjacency.
  std::unique_ptr<rt::GlobalArray<double>> reduce_;      ///< per-thread maxima.
  std::unique_ptr<rt::Barrier> barrier_;
  double dt_ = 0;  ///< set by thread 0 each step.
};

}  // namespace spp::fem
