#include "spp/apps/fem/mesh.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace spp::fem {

std::uint32_t morton2(std::uint32_t ix, std::uint32_t iy) {
  auto spread = [](std::uint32_t v) {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(ix) | (spread(iy) << 1);
}

std::int32_t Mesh::max_point_degree() const {
  std::int32_t best = 0;
  for (std::size_t p = 0; p + 1 < p2e_off.size(); ++p) {
    best = std::max(best, p2e_off[p + 1] - p2e_off[p]);
  }
  return best;
}

double Mesh::average_point_degree() const {
  if (num_points() == 0) return 0;
  return static_cast<double>(p2e.size()) / static_cast<double>(num_points());
}

void Mesh::finalize() {
  const std::size_t np = num_points();
  const std::size_t ne = num_elements();
  if (area.size() != ne || bx.size() != ne || by.size() != ne) {
    throw std::logic_error("mesh: geometry must be set before finalize()");
  }

  // Point -> element adjacency (CSR).
  p2e_off.assign(np + 1, 0);
  for (const auto& t : tri) {
    for (const std::int32_t p : t) ++p2e_off[p + 1];
  }
  std::partial_sum(p2e_off.begin(), p2e_off.end(), p2e_off.begin());
  p2e.assign(p2e_off.back(), -1);
  std::vector<std::int32_t> cursor(p2e_off.begin(), p2e_off.end() - 1);
  for (std::size_t e = 0; e < ne; ++e) {
    for (const std::int32_t p : tri[e]) {
      p2e[cursor[p]++] = static_cast<std::int32_t>(e);
    }
  }

  // Lumped mass: one third of each incident element's area.
  lumped_mass.assign(np, 0.0);
  for (std::size_t e = 0; e < ne; ++e) {
    for (const std::int32_t p : tri[e]) {
      lumped_mass[p] += area[e] / 3.0;
    }
  }
}

Mesh make_periodic_tri_mesh(std::uint32_t nx, std::uint32_t ny,
                            bool morton_order) {
  assert(nx >= 2 && ny >= 2);
  Mesh m;
  const std::size_t np = static_cast<std::size_t>(nx) * ny;
  m.x.resize(np);
  m.y.resize(np);
  auto pid = [&](std::uint32_t i, std::uint32_t j) {
    return static_cast<std::int32_t>((j % ny) * nx + (i % nx));
  };
  for (std::uint32_t j = 0; j < ny; ++j) {
    for (std::uint32_t i = 0; i < nx; ++i) {
      m.x[pid(i, j)] = static_cast<double>(i);
      m.y[pid(i, j)] = static_cast<double>(j);
    }
  }

  // Two triangles per quad; geometry computed from UNWRAPPED corner
  // coordinates so boundary-crossing elements keep positive area.
  const std::size_t ne = 2 * static_cast<std::size_t>(nx) * ny;
  m.tri.reserve(ne);
  m.area.reserve(ne);
  m.bx.reserve(ne);
  m.by.reserve(ne);
  auto add_tri = [&](std::int32_t p1, std::int32_t p2, std::int32_t p3,
                     double x1, double y1, double x2, double y2, double x3,
                     double y3) {
    const double twoA = (x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1);
    assert(twoA > 0);
    m.tri.push_back({p1, p2, p3});
    m.area.push_back(0.5 * twoA);
    m.bx.push_back({(y2 - y3) / twoA, (y3 - y1) / twoA, (y1 - y2) / twoA});
    m.by.push_back({(x3 - x2) / twoA, (x1 - x3) / twoA, (x2 - x1) / twoA});
  };
  for (std::uint32_t j = 0; j < ny; ++j) {
    for (std::uint32_t i = 0; i < nx; ++i) {
      const double x0 = i, y0 = j, x1 = i + 1.0, y1 = j + 1.0;
      // Lower-left triangle and upper-right triangle.
      add_tri(pid(i, j), pid(i + 1, j), pid(i, j + 1),  //
              x0, y0, x1, y0, x0, y1);
      add_tri(pid(i + 1, j), pid(i + 1, j + 1), pid(i, j + 1),  //
              x1, y0, x1, y1, x0, y1);
    }
  }

  if (morton_order) {
    // Renumber points by the Morton key of their lattice coordinates.
    std::vector<std::int32_t> pperm(np);  // old -> position sorted
    std::vector<std::int32_t> order(np);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
      const auto ka = morton2(static_cast<std::uint32_t>(m.x[a]),
                              static_cast<std::uint32_t>(m.y[a]));
      const auto kb = morton2(static_cast<std::uint32_t>(m.x[b]),
                              static_cast<std::uint32_t>(m.y[b]));
      return ka != kb ? ka < kb : a < b;
    });
    std::vector<std::int32_t> old2new(np);
    for (std::size_t k = 0; k < np; ++k) old2new[order[k]] = static_cast<std::int32_t>(k);
    std::vector<double> nxs(np), nys(np);
    for (std::size_t p = 0; p < np; ++p) {
      nxs[old2new[p]] = m.x[p];
      nys[old2new[p]] = m.y[p];
    }
    m.x = std::move(nxs);
    m.y = std::move(nys);
    for (auto& t : m.tri) {
      for (auto& p : t) p = old2new[p];
    }
    (void)pperm;

    // Renumber elements by the Morton key of their centroid cell.
    std::vector<std::int32_t> eorder(m.tri.size());
    std::iota(eorder.begin(), eorder.end(), 0);
    auto ekey = [&](std::int32_t e) {
      // Centroid from the element's point coordinates (wrapped is fine for a
      // locality key).
      const auto& t = m.tri[e];
      const double cx = (m.x[t[0]] + m.x[t[1]] + m.x[t[2]]) / 3.0;
      const double cy = (m.y[t[0]] + m.y[t[1]] + m.y[t[2]]) / 3.0;
      return morton2(static_cast<std::uint32_t>(cx),
                     static_cast<std::uint32_t>(cy));
    };
    std::sort(eorder.begin(), eorder.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto ka = ekey(a), kb = ekey(b);
                return ka != kb ? ka < kb : a < b;
              });
    std::vector<std::array<std::int32_t, 3>> ntri(m.tri.size());
    std::vector<double> narea(m.tri.size());
    std::vector<std::array<double, 3>> nbx(m.tri.size()), nby(m.tri.size());
    for (std::size_t k = 0; k < eorder.size(); ++k) {
      ntri[k] = m.tri[eorder[k]];
      narea[k] = m.area[eorder[k]];
      nbx[k] = m.bx[eorder[k]];
      nby[k] = m.by[eorder[k]];
    }
    m.tri = std::move(ntri);
    m.area = std::move(narea);
    m.bx = std::move(nbx);
    m.by = std::move(nby);
  }

  m.finalize();
  return m;
}

}  // namespace spp::fem
