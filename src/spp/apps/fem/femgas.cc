#include "spp/apps/fem/femgas.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "spp/ckpt/ckpt.h"

namespace spp::fem {

namespace {

std::pair<std::size_t, std::size_t> split(std::size_t n, unsigned parts,
                                          unsigned p) {
  const std::size_t base = n / parts, rem = n % parts;
  const std::size_t begin = p * base + std::min<std::size_t>(p, rem);
  return {begin, begin + base + (p < rem ? 1 : 0)};
}

struct Prim {
  double rho, vx, vy, p;
};

// Trace-memoization regions (docs/PERFORMANCE.md "Trace memoization"): each
// per-step phase walks a fixed per-thread address range, so one region per
// phase suffices -- region slots are per simulated thread.
constexpr std::uint32_t kRegionWave = 0x01000000;
constexpr std::uint32_t kRegionElement = 0x02000000;
constexpr std::uint32_t kRegionCopy = 0x03000000;
constexpr std::uint32_t kRegionPoint = 0x04000000;

Prim primitives(const std::array<double, 4>& u, double gamma) {
  Prim w;
  w.rho = u[0];
  w.vx = u[1] / u[0];
  w.vy = u[2] / u[0];
  w.p = (gamma - 1.0) * (u[3] - 0.5 * u[0] * (w.vx * w.vx + w.vy * w.vy));
  return w;
}

void fluxes(const std::array<double, 4>& u, double gamma,
            std::array<double, 4>& fx, std::array<double, 4>& fy) {
  const Prim w = primitives(u, gamma);
  fx = {u[1], u[1] * w.vx + w.p, u[2] * w.vx, (u[3] + w.p) * w.vx};
  fy = {u[2], u[1] * w.vy, u[2] * w.vy + w.p, (u[3] + w.p) * w.vy};
}

}  // namespace

FemGas::FemGas(rt::Runtime& rt, const FemConfig& cfg, unsigned nthreads,
               rt::Placement placement)
    : rt_(rt),
      cfg_(cfg),
      nthreads_(nthreads),
      placement_(placement),
      mesh_(make_periodic_tri_mesh(cfg.nx, cfg.ny, cfg.morton)) {
  using arch::MemClass;
  const std::size_t np = mesh_.num_points();
  const std::size_t ne = mesh_.num_elements();

  u_ = std::make_unique<rt::GlobalArray<double>>(rt_, 4 * np,
                                                 MemClass::kFarShared, "fem.u");
  uold_ = std::make_unique<rt::GlobalArray<double>>(
      rt_, 4 * np, MemClass::kFarShared, "fem.uold");
  res_ = std::make_unique<rt::GlobalArray<double>>(
      rt_, 12 * ne, MemClass::kFarShared, "fem.res");
  conn_ = std::make_unique<rt::GlobalArray<std::int32_t>>(
      rt_, 3 * ne, MemClass::kFarShared, "fem.conn");
  // Adjacency entries encode 3*element + vertex_slot so the point phase
  // knows which residual slot to gather.
  p2e_ = std::make_unique<rt::GlobalArray<std::int32_t>>(
      rt_, mesh_.p2e.size(), MemClass::kFarShared, "fem.p2e");
  reduce_ = std::make_unique<rt::GlobalArray<double>>(
      rt_, nthreads_, MemClass::kNearShared, "fem.reduce");
  barrier_ = std::make_unique<rt::Barrier>(rt_, nthreads_);

  for (std::size_t e = 0; e < ne; ++e) {
    for (int k = 0; k < 3; ++k) conn_->raw(3 * e + k) = mesh_.tri[e][k];
  }
  std::vector<std::int32_t> cursor(np, 0);
  for (std::size_t p = 0; p < np; ++p) cursor[p] = mesh_.p2e_off[p];
  for (std::size_t e = 0; e < ne; ++e) {
    for (int k = 0; k < 3; ++k) {
      const std::int32_t p = mesh_.tri[e][k];
      p2e_->raw(cursor[p]++) = static_cast<std::int32_t>(3 * e + k);
    }
  }
  init_uniform(1.0, 0.0, 0.0, 1.0);
}

void FemGas::init_uniform(double rho, double ux, double uy, double pressure) {
  const double gamma = cfg_.gamma;
  const double e = pressure / (gamma - 1.0) + 0.5 * rho * (ux * ux + uy * uy);
  for (std::size_t p = 0; p < mesh_.num_points(); ++p) {
    u_->raw(4 * p + 0) = rho;
    u_->raw(4 * p + 1) = rho * ux;
    u_->raw(4 * p + 2) = rho * uy;
    u_->raw(4 * p + 3) = e;
  }
}

void FemGas::init_blast(double p_peak, double radius) {
  init_uniform(1.0, 0.0, 0.0, 0.1);
  const double cx = cfg_.nx / 2.0, cy = cfg_.ny / 2.0;
  for (std::size_t p = 0; p < mesh_.num_points(); ++p) {
    const double dx = mesh_.x[p] - cx, dy = mesh_.y[p] - cy;
    const double r2 = (dx * dx + dy * dy) / (radius * radius);
    const double pr = 0.1 + p_peak * std::exp(-r2);
    u_->raw(4 * p + 3) = pr / (cfg_.gamma - 1.0);
  }
}

std::array<double, 4> FemGas::state(std::size_t p) const {
  return {u_->raw(4 * p), u_->raw(4 * p + 1), u_->raw(4 * p + 2),
          u_->raw(4 * p + 3)};
}

double FemGas::wave_speed_phase(unsigned tid, unsigned nthreads) {
  const auto [pb, pe] = split(mesh_.num_points(), nthreads, tid);
  rt_.memo_mark(kRegionWave);
  double lmax = 1e-12;
  for (std::size_t p = pb; p < pe; ++p) {
    std::array<double, 4> u;
    for (int c = 0; c < 4; ++c) u[c] = u_->read(4 * p + c);
    const Prim w = primitives(u, cfg_.gamma);
    const double cs = std::sqrt(cfg_.gamma * std::max(w.p, 1e-12) / w.rho);
    lmax = std::max(lmax, std::hypot(w.vx, w.vy) + cs);
    rt_.work_flops(14);
  }
  rt_.memo_close();
  // Class-1 global communication: max reduction through shared memory.
  reduce_->write(tid, lmax);
  barrier_->wait();
  if (tid == 0) {
    double gmax = 0;
    for (unsigned t = 0; t < nthreads; ++t) {
      gmax = std::max(gmax, reduce_->read(t));
    }
    dt_ = cfg_.cfl * 1.0 / gmax;  // unit mesh spacing.
  }
  barrier_->wait();
  return dt_;
}

std::array<double, 4> FemGas::element_residual(std::size_t e, int k,
                                               bool charged,
                                               bool from_old) const {
  const rt::GlobalArray<double>& src = from_old ? *uold_ : *u_;
  std::array<std::array<double, 4>, 3> uv;
  for (int v = 0; v < 3; ++v) {
    const std::int32_t p =
        charged ? conn_->read(3 * e + v) : conn_->raw(3 * e + v);
    for (int c = 0; c < 4; ++c) {
      uv[v][c] = charged ? src.read(4 * static_cast<std::size_t>(p) + c)
                         : src.raw(4 * static_cast<std::size_t>(p) + c);
    }
  }
  std::array<double, 4> ubar;
  for (int c = 0; c < 4; ++c) {
    ubar[c] = (uv[0][c] + uv[1][c] + uv[2][c]) / 3.0;
  }
  std::array<double, 4> fx, fy;
  fluxes(ubar, cfg_.gamma, fx, fy);
  const Prim w = primitives(ubar, cfg_.gamma);
  const double cs = std::sqrt(cfg_.gamma * std::max(w.p, 1e-12) / w.rho);
  const double lam = std::hypot(w.vx, w.vy) + cs;
  const double h = std::sqrt(mesh_.area[e]);
  // Rusanov coefficient: full |lambda|-scaled diffusion keeps strong blasts
  // positive at CFL <= ~0.4 (first-order scheme).
  const double nu = 1.3 * lam * h;

  std::array<double, 4> r;
  const double a = mesh_.area[e];
  for (int c = 0; c < 4; ++c) {
    r[c] = -a * (fx[c] * mesh_.bx[e][k] + fy[c] * mesh_.by[e][k]) +
           nu * (ubar[c] - uv[k][c]) / 3.0 * h;
  }
  if (charged) rt_.work_flops(kFlopsPerElementUpdate / 3.0);
  return r;
}

void FemGas::element_phase(unsigned tid, unsigned nthreads) {
  const auto [eb, ee] = split(mesh_.num_elements(), nthreads, tid);
  rt_.memo_mark(kRegionElement);
  for (std::size_t e = eb; e < ee; ++e) {
    for (int k = 0; k < 3; ++k) {
      const auto r = element_residual(e, k, /*charged=*/true);
      for (int c = 0; c < 4; ++c) {
        res_->raw(12 * e + 4 * k + c) = r[c];
      }
      rt_.write(res_->vaddr(12 * e + 4 * k), 4 * sizeof(double));
    }
  }
  rt_.memo_close();
}

void FemGas::copy_state_phase(unsigned tid, unsigned nthreads) {
  const auto [pb, pe] = split(mesh_.num_points(), nthreads, tid);
  rt_.memo_mark(kRegionCopy);
  for (std::size_t p = pb; p < pe; ++p) {
    for (int c = 0; c < 4; ++c) uold_->raw(4 * p + c) = u_->raw(4 * p + c);
  }
  u_->touch_range(4 * pb, 4 * (pe - pb), false);
  uold_->touch_range(4 * pb, 4 * (pe - pb), true);
  rt_.memo_close();
}

void FemGas::point_phase(unsigned tid, unsigned nthreads, double dt) {
  const auto [pb, pe] = split(mesh_.num_points(), nthreads, tid);
  rt_.memo_mark(kRegionPoint);
  for (std::size_t p = pb; p < pe; ++p) {
    std::array<double, 4> acc{0, 0, 0, 0};
    const std::int32_t lo = mesh_.p2e_off[p], hi = mesh_.p2e_off[p + 1];
    for (std::int32_t a = lo; a < hi; ++a) {
      const std::int32_t enc = p2e_->read(a);  // class-3 aggregation gather.
      const std::size_t e = static_cast<std::size_t>(enc) / 3;
      const int k = static_cast<int>(enc % 3);
      if (cfg_.coding == Coding::kStoreResiduals) {
        rt_.read(res_->vaddr(12 * e + 4 * k), 4 * sizeof(double));
        for (int c = 0; c < 4; ++c) acc[c] += res_->raw(12 * e + 4 * k + c);
        rt_.work_flops(4);
      } else {
        const auto r =
            element_residual(e, k, /*charged=*/true, /*from_old=*/true);
        for (int c = 0; c < 4; ++c) acc[c] += r[c];
        rt_.work_flops(4);
      }
    }
    const double scale = dt / mesh_.lumped_mass[p];
    for (int c = 0; c < 4; ++c) {
      const double now = u_->read(4 * p + c);
      u_->write(4 * p + c, now + scale * acc[c]);
    }
    rt_.work_flops(9);
  }
  rt_.memo_close();
}

FemDiagnostics FemGas::diagnostics() const {
  FemDiagnostics d;
  d.min_density = std::numeric_limits<double>::infinity();
  d.min_pressure = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < mesh_.num_points(); ++p) {
    const double m = mesh_.lumped_mass[p];
    const auto u = state(p);
    d.total_mass += m * u[0];
    d.total_mom_x += m * u[1];
    d.total_mom_y += m * u[2];
    d.total_energy += m * u[3];
    const Prim w = primitives(u, cfg_.gamma);
    d.min_density = std::min(d.min_density, w.rho);
    d.min_pressure = std::min(d.min_pressure, w.p);
  }
  return d;
}

FemResult FemGas::run() {
  FemResult res;
  res.initial = diagnostics();
  rt_.machine().reset_stats();
  const sim::Time t0 = rt_.now();

  // Migrate-and-restore recovery (docs/RECOVERY.md): the point state u_ is
  // the only step-to-step state, so snapshotting it every K steps and
  // replaying from the last epoch after a fail-stop reproduces the
  // fault-free run bit-exactly.  With ckpt_interval == 0 nothing below
  // allocates, charges, or synchronizes.
  std::unique_ptr<ckpt::Store> store;
  if (cfg_.ckpt_interval > 0) {
    store = std::make_unique<ckpt::Store>(rt_);
    store->registrar().add("fem.u", *u_);
  }
  std::uint64_t seen_recoveries = rt_.machine().perf().cpu_recoveries;
  unsigned next_step = 0;

  rt_.parallel(nthreads_, placement_, [&](unsigned tid, unsigned n) {
    for (unsigned step = 0; step < cfg_.steps;) {
      if (store) {
        if (tid == 0 && step % cfg_.ckpt_interval == 0 &&
            !store->has_epoch(step)) {
          store->capture(step);
        }
        barrier_->wait();
      }
      const double dt = wave_speed_phase(tid, n);
      if (cfg_.coding == Coding::kStoreResiduals) {
        element_phase(tid, n);
      } else {
        copy_state_phase(tid, n);
      }
      barrier_->wait();
      point_phase(tid, n, dt);
      barrier_->wait();
      if (store) {
        if (tid == 0) {
          const std::uint64_t rec = rt_.machine().perf().cpu_recoveries;
          if (rec != seen_recoveries && store->latest() >= 0) {
            // A thread migrated off a fail-stopped CPU this step: the data
            // is intact but mid-step work interleaved with the failure, so
            // roll back to the last epoch and replay.
            store->restore(static_cast<std::uint64_t>(store->latest()));
            next_step = static_cast<unsigned>(store->latest());
          } else {
            next_step = step + 1;
          }
          seen_recoveries = rec;
        }
        barrier_->wait();
        step = next_step;
      } else {
        ++step;
      }
    }
  });

  res.sim_time = rt_.now() - t0;
  const auto total = rt_.machine().perf().total();
  res.flops = total.flops;
  res.point_updates =
      static_cast<double>(mesh_.num_points()) * cfg_.steps;
  res.updates_per_usec = res.point_updates / sim::to_usec(res.sim_time);
  // The paper's "useful Mflop/s": minimal serial flops per point update
  // divided by wall time, regardless of coding.
  res.mflops = res.point_updates * kFlopsPerPointUpdate /
               (sim::to_seconds(res.sim_time) * 1e6);
  res.final = diagnostics();
  return res;
}

FemResult FemGas::run_durable(const ckpt::DurableSpec& spec) {
  FemResult res;
  res.initial = diagnostics();
  rt_.machine().reset_stats();
  const sim::Time t0 = rt_.now();

  // The point state u_ is the only step-to-step state (dt_ and the residual
  // scratch are recomputed every step), so the durable region set is just
  // the in-memory recovery loop's.
  ckpt::Store store(rt_);
  store.registrar().add("fem.u", *u_);

  ckpt::DurableSession session(rt_, store, spec);
  std::uint64_t step = session.begin();

  while (session.boundary(step) && step < cfg_.steps) {
    const std::uint64_t end =
        std::min<std::uint64_t>(step + session.interval(), cfg_.steps);
    rt_.parallel(nthreads_, placement_, [&](unsigned tid, unsigned n) {
      for (std::uint64_t s = step; s < end; ++s) {
        const double dt = wave_speed_phase(tid, n);
        if (cfg_.coding == Coding::kStoreResiduals) {
          element_phase(tid, n);
        } else {
          copy_state_phase(tid, n);
        }
        barrier_->wait();
        point_phase(tid, n, dt);
        barrier_->wait();
      }
    });
    step = end;
  }

  res.sim_time = rt_.now() - t0;
  const auto total = rt_.machine().perf().total();
  res.flops = total.flops;
  res.point_updates =
      static_cast<double>(mesh_.num_points()) * cfg_.steps;
  res.updates_per_usec = res.point_updates / sim::to_usec(res.sim_time);
  res.mflops = res.point_updates * kFlopsPerPointUpdate /
               (sim::to_seconds(res.sim_time) * 1e6);
  res.final = diagnostics();
  return res;
}

}  // namespace spp::fem
