# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_vmem[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_machine_multinode[1]_include.cmake")
include("/root/repo/build/tests/test_garray[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_pvm[1]_include.cmake")
include("/root/repo/build/tests/test_c90[1]_include.cmake")
include("/root/repo/build/tests/test_pic[1]_include.cmake")
include("/root/repo/build/tests/test_nbody[1]_include.cmake")
include("/root/repo/build/tests/test_fem[1]_include.cmake")
include("/root/repo/build/tests/test_ppm[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_riemann[1]_include.cmake")
include("/root/repo/build/tests/test_lib[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_nbody_pvm[1]_include.cmake")
include("/root/repo/build/tests/test_cps[1]_include.cmake")
include("/root/repo/build/tests/test_ablation[1]_include.cmake")
