file(REMOVE_RECURSE
  "CMakeFiles/test_machine_multinode.dir/test_machine_multinode.cc.o"
  "CMakeFiles/test_machine_multinode.dir/test_machine_multinode.cc.o.d"
  "test_machine_multinode"
  "test_machine_multinode.pdb"
  "test_machine_multinode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
