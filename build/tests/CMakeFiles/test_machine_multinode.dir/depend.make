# Empty dependencies file for test_machine_multinode.
# This may be replaced when dependencies are built.
