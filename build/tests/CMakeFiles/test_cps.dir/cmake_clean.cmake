file(REMOVE_RECURSE
  "CMakeFiles/test_cps.dir/test_cps.cc.o"
  "CMakeFiles/test_cps.dir/test_cps.cc.o.d"
  "test_cps"
  "test_cps.pdb"
  "test_cps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
