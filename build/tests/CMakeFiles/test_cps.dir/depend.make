# Empty dependencies file for test_cps.
# This may be replaced when dependencies are built.
