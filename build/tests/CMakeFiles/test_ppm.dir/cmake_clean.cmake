file(REMOVE_RECURSE
  "CMakeFiles/test_ppm.dir/test_ppm.cc.o"
  "CMakeFiles/test_ppm.dir/test_ppm.cc.o.d"
  "test_ppm"
  "test_ppm.pdb"
  "test_ppm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
