# Empty compiler generated dependencies file for test_c90.
# This may be replaced when dependencies are built.
