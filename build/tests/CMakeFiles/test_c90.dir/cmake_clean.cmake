file(REMOVE_RECURSE
  "CMakeFiles/test_c90.dir/test_c90.cc.o"
  "CMakeFiles/test_c90.dir/test_c90.cc.o.d"
  "test_c90"
  "test_c90.pdb"
  "test_c90[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c90.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
