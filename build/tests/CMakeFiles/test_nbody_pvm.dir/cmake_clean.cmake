file(REMOVE_RECURSE
  "CMakeFiles/test_nbody_pvm.dir/test_nbody_pvm.cc.o"
  "CMakeFiles/test_nbody_pvm.dir/test_nbody_pvm.cc.o.d"
  "test_nbody_pvm"
  "test_nbody_pvm.pdb"
  "test_nbody_pvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbody_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
