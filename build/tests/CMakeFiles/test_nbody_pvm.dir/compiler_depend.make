# Empty compiler generated dependencies file for test_nbody_pvm.
# This may be replaced when dependencies are built.
