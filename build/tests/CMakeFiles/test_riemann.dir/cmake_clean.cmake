file(REMOVE_RECURSE
  "CMakeFiles/test_riemann.dir/test_riemann.cc.o"
  "CMakeFiles/test_riemann.dir/test_riemann.cc.o.d"
  "test_riemann"
  "test_riemann.pdb"
  "test_riemann[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_riemann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
