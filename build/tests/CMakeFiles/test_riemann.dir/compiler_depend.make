# Empty compiler generated dependencies file for test_riemann.
# This may be replaced when dependencies are built.
