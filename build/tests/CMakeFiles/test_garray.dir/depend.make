# Empty dependencies file for test_garray.
# This may be replaced when dependencies are built.
