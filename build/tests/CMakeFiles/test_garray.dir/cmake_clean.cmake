file(REMOVE_RECURSE
  "CMakeFiles/test_garray.dir/test_garray.cc.o"
  "CMakeFiles/test_garray.dir/test_garray.cc.o.d"
  "test_garray"
  "test_garray.pdb"
  "test_garray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_garray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
