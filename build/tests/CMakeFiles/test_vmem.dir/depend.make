# Empty dependencies file for test_vmem.
# This may be replaced when dependencies are built.
