file(REMOVE_RECURSE
  "CMakeFiles/test_vmem.dir/test_vmem.cc.o"
  "CMakeFiles/test_vmem.dir/test_vmem.cc.o.d"
  "test_vmem"
  "test_vmem.pdb"
  "test_vmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
