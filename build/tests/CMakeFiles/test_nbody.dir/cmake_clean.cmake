file(REMOVE_RECURSE
  "CMakeFiles/test_nbody.dir/test_nbody.cc.o"
  "CMakeFiles/test_nbody.dir/test_nbody.cc.o.d"
  "test_nbody"
  "test_nbody.pdb"
  "test_nbody[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
