# Empty dependencies file for test_nbody.
# This may be replaced when dependencies are built.
