
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_nbody.cc" "bench/CMakeFiles/bench_nbody.dir/bench_nbody.cc.o" "gcc" "bench/CMakeFiles/bench_nbody.dir/bench_nbody.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spp/apps/CMakeFiles/spp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/pvm/CMakeFiles/spp_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/rt/CMakeFiles/spp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/arch/CMakeFiles/spp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/sim/CMakeFiles/spp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/fft/CMakeFiles/spp_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/c90/CMakeFiles/spp_c90.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
