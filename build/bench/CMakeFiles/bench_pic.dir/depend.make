# Empty dependencies file for bench_pic.
# This may be replaced when dependencies are built.
