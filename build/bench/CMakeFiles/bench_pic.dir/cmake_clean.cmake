file(REMOVE_RECURSE
  "CMakeFiles/bench_pic.dir/bench_pic.cc.o"
  "CMakeFiles/bench_pic.dir/bench_pic.cc.o.d"
  "bench_pic"
  "bench_pic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
