# Empty dependencies file for bench_forkjoin.
# This may be replaced when dependencies are built.
