file(REMOVE_RECURSE
  "CMakeFiles/bench_message.dir/bench_message.cc.o"
  "CMakeFiles/bench_message.dir/bench_message.cc.o.d"
  "bench_message"
  "bench_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
