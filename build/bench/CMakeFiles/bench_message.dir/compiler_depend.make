# Empty compiler generated dependencies file for bench_message.
# This may be replaced when dependencies are built.
