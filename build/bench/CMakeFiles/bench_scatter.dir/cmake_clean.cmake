file(REMOVE_RECURSE
  "CMakeFiles/bench_scatter.dir/bench_scatter.cc.o"
  "CMakeFiles/bench_scatter.dir/bench_scatter.cc.o.d"
  "bench_scatter"
  "bench_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
