# Empty dependencies file for bench_scatter.
# This may be replaced when dependencies are built.
