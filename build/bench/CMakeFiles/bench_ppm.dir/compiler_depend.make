# Empty compiler generated dependencies file for bench_ppm.
# This may be replaced when dependencies are built.
