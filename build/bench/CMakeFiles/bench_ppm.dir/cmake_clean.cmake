file(REMOVE_RECURSE
  "CMakeFiles/bench_ppm.dir/bench_ppm.cc.o"
  "CMakeFiles/bench_ppm.dir/bench_ppm.cc.o.d"
  "bench_ppm"
  "bench_ppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
