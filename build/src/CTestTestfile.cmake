# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("spp/sim")
subdirs("spp/arch")
subdirs("spp/sci")
subdirs("spp/rt")
subdirs("spp/lib")
subdirs("spp/prof")
subdirs("spp/pvm")
subdirs("spp/fft")
subdirs("spp/c90")
subdirs("spp/apps")
