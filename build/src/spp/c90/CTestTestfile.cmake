# CMake generated Testfile for 
# Source directory: /root/repo/src/spp/c90
# Build directory: /root/repo/build/src/spp/c90
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
