file(REMOVE_RECURSE
  "libspp_c90.a"
)
