file(REMOVE_RECURSE
  "CMakeFiles/spp_c90.dir/c90.cc.o"
  "CMakeFiles/spp_c90.dir/c90.cc.o.d"
  "libspp_c90.a"
  "libspp_c90.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_c90.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
