# Empty dependencies file for spp_c90.
# This may be replaced when dependencies are built.
