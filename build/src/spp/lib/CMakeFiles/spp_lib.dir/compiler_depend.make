# Empty compiler generated dependencies file for spp_lib.
# This may be replaced when dependencies are built.
