file(REMOVE_RECURSE
  "libspp_lib.a"
)
