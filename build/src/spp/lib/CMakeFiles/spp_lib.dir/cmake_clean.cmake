file(REMOVE_RECURSE
  "CMakeFiles/spp_lib.dir/pfft.cc.o"
  "CMakeFiles/spp_lib.dir/pfft.cc.o.d"
  "CMakeFiles/spp_lib.dir/psort.cc.o"
  "CMakeFiles/spp_lib.dir/psort.cc.o.d"
  "CMakeFiles/spp_lib.dir/scatter_add.cc.o"
  "CMakeFiles/spp_lib.dir/scatter_add.cc.o.d"
  "libspp_lib.a"
  "libspp_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
