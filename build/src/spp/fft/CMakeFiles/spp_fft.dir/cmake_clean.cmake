file(REMOVE_RECURSE
  "CMakeFiles/spp_fft.dir/fft.cc.o"
  "CMakeFiles/spp_fft.dir/fft.cc.o.d"
  "libspp_fft.a"
  "libspp_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
