# Empty compiler generated dependencies file for spp_fft.
# This may be replaced when dependencies are built.
