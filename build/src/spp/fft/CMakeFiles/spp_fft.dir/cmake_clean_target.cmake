file(REMOVE_RECURSE
  "libspp_fft.a"
)
