# Empty compiler generated dependencies file for spp_pvm.
# This may be replaced when dependencies are built.
