file(REMOVE_RECURSE
  "CMakeFiles/spp_pvm.dir/pvm.cc.o"
  "CMakeFiles/spp_pvm.dir/pvm.cc.o.d"
  "libspp_pvm.a"
  "libspp_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
