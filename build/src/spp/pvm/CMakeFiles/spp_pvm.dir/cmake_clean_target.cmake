file(REMOVE_RECURSE
  "libspp_pvm.a"
)
