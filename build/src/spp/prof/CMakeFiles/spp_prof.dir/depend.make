# Empty dependencies file for spp_prof.
# This may be replaced when dependencies are built.
