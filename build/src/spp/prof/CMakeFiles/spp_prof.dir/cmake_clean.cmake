file(REMOVE_RECURSE
  "CMakeFiles/spp_prof.dir/profiler.cc.o"
  "CMakeFiles/spp_prof.dir/profiler.cc.o.d"
  "libspp_prof.a"
  "libspp_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
