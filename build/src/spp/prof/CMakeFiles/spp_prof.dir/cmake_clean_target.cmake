file(REMOVE_RECURSE
  "libspp_prof.a"
)
