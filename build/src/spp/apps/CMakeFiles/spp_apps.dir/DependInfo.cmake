
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spp/apps/fem/femgas.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/fem/femgas.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/fem/femgas.cc.o.d"
  "/root/repo/src/spp/apps/fem/mesh.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/fem/mesh.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/fem/mesh.cc.o.d"
  "/root/repo/src/spp/apps/nbody/nbody.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/nbody/nbody.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/nbody/nbody.cc.o.d"
  "/root/repo/src/spp/apps/nbody/nbody_pvm.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/nbody/nbody_pvm.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/nbody/nbody_pvm.cc.o.d"
  "/root/repo/src/spp/apps/pic/pic.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/pic/pic.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/pic/pic.cc.o.d"
  "/root/repo/src/spp/apps/pic/pic_pvm.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/pic/pic_pvm.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/pic/pic_pvm.cc.o.d"
  "/root/repo/src/spp/apps/ppm/ppm.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/ppm/ppm.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/ppm/ppm.cc.o.d"
  "/root/repo/src/spp/apps/ppm/riemann.cc" "src/spp/apps/CMakeFiles/spp_apps.dir/ppm/riemann.cc.o" "gcc" "src/spp/apps/CMakeFiles/spp_apps.dir/ppm/riemann.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spp/rt/CMakeFiles/spp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/pvm/CMakeFiles/spp_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/fft/CMakeFiles/spp_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/c90/CMakeFiles/spp_c90.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/arch/CMakeFiles/spp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/spp/sim/CMakeFiles/spp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
