file(REMOVE_RECURSE
  "CMakeFiles/spp_apps.dir/fem/femgas.cc.o"
  "CMakeFiles/spp_apps.dir/fem/femgas.cc.o.d"
  "CMakeFiles/spp_apps.dir/fem/mesh.cc.o"
  "CMakeFiles/spp_apps.dir/fem/mesh.cc.o.d"
  "CMakeFiles/spp_apps.dir/nbody/nbody.cc.o"
  "CMakeFiles/spp_apps.dir/nbody/nbody.cc.o.d"
  "CMakeFiles/spp_apps.dir/nbody/nbody_pvm.cc.o"
  "CMakeFiles/spp_apps.dir/nbody/nbody_pvm.cc.o.d"
  "CMakeFiles/spp_apps.dir/pic/pic.cc.o"
  "CMakeFiles/spp_apps.dir/pic/pic.cc.o.d"
  "CMakeFiles/spp_apps.dir/pic/pic_pvm.cc.o"
  "CMakeFiles/spp_apps.dir/pic/pic_pvm.cc.o.d"
  "CMakeFiles/spp_apps.dir/ppm/ppm.cc.o"
  "CMakeFiles/spp_apps.dir/ppm/ppm.cc.o.d"
  "CMakeFiles/spp_apps.dir/ppm/riemann.cc.o"
  "CMakeFiles/spp_apps.dir/ppm/riemann.cc.o.d"
  "libspp_apps.a"
  "libspp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
