# Empty compiler generated dependencies file for spp_apps.
# This may be replaced when dependencies are built.
