file(REMOVE_RECURSE
  "libspp_apps.a"
)
