# Empty dependencies file for spp_arch.
# This may be replaced when dependencies are built.
