file(REMOVE_RECURSE
  "CMakeFiles/spp_arch.dir/machine.cc.o"
  "CMakeFiles/spp_arch.dir/machine.cc.o.d"
  "CMakeFiles/spp_arch.dir/vmem.cc.o"
  "CMakeFiles/spp_arch.dir/vmem.cc.o.d"
  "libspp_arch.a"
  "libspp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
