file(REMOVE_RECURSE
  "libspp_arch.a"
)
