# CMake generated Testfile for 
# Source directory: /root/repo/src/spp/arch
# Build directory: /root/repo/build/src/spp/arch
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
