# Empty compiler generated dependencies file for spp_sim.
# This may be replaced when dependencies are built.
