file(REMOVE_RECURSE
  "CMakeFiles/spp_sim.dir/log.cc.o"
  "CMakeFiles/spp_sim.dir/log.cc.o.d"
  "libspp_sim.a"
  "libspp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
