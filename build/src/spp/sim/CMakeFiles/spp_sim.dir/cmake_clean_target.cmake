file(REMOVE_RECURSE
  "libspp_sim.a"
)
