# Empty dependencies file for spp_rt.
# This may be replaced when dependencies are built.
