file(REMOVE_RECURSE
  "libspp_rt.a"
)
