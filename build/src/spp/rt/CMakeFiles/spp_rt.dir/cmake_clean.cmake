file(REMOVE_RECURSE
  "CMakeFiles/spp_rt.dir/conductor.cc.o"
  "CMakeFiles/spp_rt.dir/conductor.cc.o.d"
  "CMakeFiles/spp_rt.dir/loops.cc.o"
  "CMakeFiles/spp_rt.dir/loops.cc.o.d"
  "CMakeFiles/spp_rt.dir/runtime.cc.o"
  "CMakeFiles/spp_rt.dir/runtime.cc.o.d"
  "CMakeFiles/spp_rt.dir/sync.cc.o"
  "CMakeFiles/spp_rt.dir/sync.cc.o.d"
  "libspp_rt.a"
  "libspp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
