# Empty compiler generated dependencies file for supernova_shell.
# This may be replaced when dependencies are built.
