file(REMOVE_RECURSE
  "CMakeFiles/supernova_shell.dir/supernova_shell.cpp.o"
  "CMakeFiles/supernova_shell.dir/supernova_shell.cpp.o.d"
  "supernova_shell"
  "supernova_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supernova_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
