# Empty compiler generated dependencies file for profiled_stencil.
# This may be replaced when dependencies are built.
