file(REMOVE_RECURSE
  "CMakeFiles/profiled_stencil.dir/profiled_stencil.cpp.o"
  "CMakeFiles/profiled_stencil.dir/profiled_stencil.cpp.o.d"
  "profiled_stencil"
  "profiled_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiled_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
