file(REMOVE_RECURSE
  "CMakeFiles/shock_tube.dir/shock_tube.cpp.o"
  "CMakeFiles/shock_tube.dir/shock_tube.cpp.o.d"
  "shock_tube"
  "shock_tube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shock_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
