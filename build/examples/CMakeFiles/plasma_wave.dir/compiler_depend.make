# Empty compiler generated dependencies file for plasma_wave.
# This may be replaced when dependencies are built.
