file(REMOVE_RECURSE
  "CMakeFiles/plasma_wave.dir/plasma_wave.cpp.o"
  "CMakeFiles/plasma_wave.dir/plasma_wave.cpp.o.d"
  "plasma_wave"
  "plasma_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plasma_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
