# Empty dependencies file for fem_blast.
# This may be replaced when dependencies are built.
