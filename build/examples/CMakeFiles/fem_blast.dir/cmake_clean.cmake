file(REMOVE_RECURSE
  "CMakeFiles/fem_blast.dir/fem_blast.cpp.o"
  "CMakeFiles/fem_blast.dir/fem_blast.cpp.o.d"
  "fem_blast"
  "fem_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
