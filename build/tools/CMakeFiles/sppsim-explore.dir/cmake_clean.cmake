file(REMOVE_RECURSE
  "CMakeFiles/sppsim-explore.dir/sppsim_explore.cc.o"
  "CMakeFiles/sppsim-explore.dir/sppsim_explore.cc.o.d"
  "sppsim-explore"
  "sppsim-explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sppsim-explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
