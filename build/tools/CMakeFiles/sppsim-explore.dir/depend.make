# Empty dependencies file for sppsim-explore.
# This may be replaced when dependencies are built.
