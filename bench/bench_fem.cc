// Figure 7: FEM gas dynamics scaling.
//
// Performance (point updates per microsecond, the paper's metric, and the
// derived "useful Mflop/s" at 437 flops/point-update) for:
//   * small1 -- small data set, residual-storing coding;
//   * small2 -- small data set, second coding (recomputing residuals);
//   * large  -- large data set, residual-storing coding;
// on 1..16 processors including the 8->9 transition where the second
// hypernode joins (the paper observed non-monotonic scaling there), with the
// C90 single-head line at 0.57 point updates/us (~250 useful Mflop/s).
//
// Paper data sets: small = 46545 points / 92160 elements, large = 263169
// points / 524288 elements; ours are 288x160 and 512x512 periodic quad
// splits (--full), reduced meshes by default.
#include <cstdio>

#include "bench/bench_common.h"
#include "spp/apps/fem/femgas.h"
#include "spp/c90/c90.h"

namespace {

using namespace spp;
using fem::Coding;
using fem::FemConfig;

double updates_per_usec(const FemConfig& cfg, unsigned np) {
  const unsigned nodes = np > 8 ? 2u : 1u;
  const auto placement =
      nodes > 1 ? rt::Placement::kUniform : rt::Placement::kHighLocality;
  rt::Runtime runtime(arch::Topology{.nodes = nodes});
  fem::FemGas app(runtime, cfg, np, placement);
  app.init_blast(2.0, cfg.nx / 8.0);
  fem::FemResult res;
  runtime.run([&] { res = app.run(); });
  return res.updates_per_usec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 7", "FEM gas dynamics scaling", opts);

  FemConfig small1;
  FemConfig large;
  if (opts.full) {
    small1.nx = 288;
    small1.ny = 160;
    small1.steps = 2;
    large.nx = 512;
    large.ny = 512;
    large.steps = 1;
  } else {
    small1.nx = 64;
    small1.ny = 48;
    small1.steps = 3;
    large.nx = 128;
    large.ny = 96;
    large.steps = 2;
  }
  FemConfig small2 = small1;
  small2.coding = Coding::kRecompute;

  std::printf("%6s | %12s %12s %12s   (point updates / us)\n", "procs",
              "small1", "small2", "large");
  double prev_small1 = 0;
  bool dipped = false;
  for (unsigned np : {1u, 2u, 4u, 8u, 9u, 12u, 16u}) {
    const double s1 = updates_per_usec(small1, np);
    const double s2 = updates_per_usec(small2, np);
    const double lg = updates_per_usec(large, np);
    std::printf("%6u | %12.4f %12.4f %12.4f\n", np, s1, s2, lg);
    if (np == 9 && s1 < prev_small1) dipped = true;
    if (np == 8) prev_small1 = s1;
  }

  std::printf("\nC90 single head (paper): 0.57 point updates/us "
              "(250 useful Mflop/s)\n");
  c90::C90Model model;
  const double c90_rate =
      model.sustained_mflops(c90::fem_profile(1e9)) / fem::kFlopsPerPointUpdate;
  std::printf("C90 single head (model): %.2f point updates/us\n", c90_rate);
  std::printf("8->9 processor transition dips (paper: non-monotonic): %s\n",
              dipped ? "yes" : "no");
  std::printf("useful Mflop/s = updates/us x %.0f flops/point-update\n",
              fem::kFlopsPerPointUpdate);
  return 0;
}
