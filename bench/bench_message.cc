// Figure 4: Cost of Round Trip Message Passing.
//
// PVM round-trip time between a pair of processors on one hypernode (local)
// and on two hypernodes (global), versus message size.  Matching the paper's
// methodology, the timed window excludes the cost of building the message
// (pack/unpack): the echo bounces the received message without unpacking.
//
// Paper targets: ~30 us local round trip and ~70 us global (ratio ~2.3),
// approximately flat below 8 KB; above 8 KB, page-granular growth.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/pvm/pvm.h"
#include "spp/rt/runtime.h"

namespace {

using namespace spp;

double round_trip_us(unsigned nodes, rt::Placement placement,
                     std::size_t bytes, unsigned trials) {
  rt::Runtime runtime(arch::Topology{.nodes = nodes});
  double best = 1e300;
  runtime.run([&] {
    pvm::Pvm root(runtime);
    root.spawn(2, placement, [&](pvm::Pvm& vm, int me, int) {
      std::vector<double> buf(bytes / 8, 1.0);
      if (me == 0) {
        for (unsigned k = 0; k < trials + 1; ++k) {
          pvm::Message m;
          m.pack(buf.data(), buf.size());
          const sim::Time t0 = runtime.now();
          vm.send(1, 1, std::move(m));
          pvm::Message reply = vm.recv(1, 2);
          const sim::Time rtt = runtime.now() - t0;
          if (k > 0) best = std::min(best, sim::to_usec(rtt));  // skip warmup
        }
      } else {
        for (unsigned k = 0; k < trials + 1; ++k) {
          pvm::Message m = vm.recv(0, 1);
          m.tag = 2;
          vm.send(0, 2, std::move(m));  // echo without unpacking
        }
      }
    });
  });
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 4", "Cost of Round Trip Message Passing", opts);
  const unsigned trials = opts.full ? 30 : 6;

  std::printf("%10s %12s %12s %8s\n", "bytes", "local_us", "global_us",
              "ratio");
  for (std::size_t bytes = 64; bytes <= (256u << 10); bytes *= 2) {
    const double local =
        round_trip_us(1, rt::Placement::kHighLocality, bytes, trials);
    const double global =
        round_trip_us(2, rt::Placement::kUniform, bytes, trials);
    std::printf("%10zu %12.1f %12.1f %8.2f\n", bytes, local, global,
                global / local);
  }

  const double l1k = round_trip_us(1, rt::Placement::kHighLocality, 1024, trials);
  const double g1k = round_trip_us(2, rt::Placement::kUniform, 1024, trials);
  std::printf("\nderived metrics              measured   paper\n");
  std::printf("local round trip, 1KB (us)   %8.1f   ~30\n", l1k);
  std::printf("global round trip, 1KB (us)  %8.1f   ~70\n", g1k);
  std::printf("global/local ratio           %8.2f   ~2.3\n", g1k / l1k);
  return 0;
}
