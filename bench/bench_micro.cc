// Host-side microbenchmarks (google-benchmark): throughput of the
// simulator's hot paths.  These measure SIMULATOR cost (how fast the model
// executes on the host), not simulated time -- useful when sizing paper-scale
// runs and checking that protocol changes don't regress the inner loop.
#include <benchmark/benchmark.h>

#include "spp/arch/machine.h"
#include "spp/fft/fft.h"
#include "spp/sim/rng.h"

namespace {

using namespace spp;
using arch::kLineBytes;

void BM_AccessHit(benchmark::State& state) {
  arch::Machine m(arch::Topology{.nodes = 2});
  const arch::VAddr va =
      m.vm().allocate(arch::kPageBytes, arch::MemClass::kNearShared, "x", 0);
  sim::Time t = m.access(0, va, false, 0);
  for (auto _ : state) {
    t = m.access(0, va, false, t);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_AccessHit);

void BM_AccessMissLocal(benchmark::State& state) {
  arch::Machine m(arch::Topology{.nodes = 2});
  const std::uint64_t bytes = 8u << 20;
  const arch::VAddr va =
      m.vm().allocate(bytes, arch::MemClass::kNearShared, "x", 0);
  sim::Time t = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    t = m.access(0, va + (i % (bytes / kLineBytes)) * kLineBytes, false, t);
    i += 97;  // defeat residency
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_AccessMissLocal);

void BM_AccessMissRemote(benchmark::State& state) {
  arch::Machine m(arch::Topology{.nodes = 4});
  const std::uint64_t bytes = 8u << 20;
  const arch::VAddr va =
      m.vm().allocate(bytes, arch::MemClass::kNearShared, "x", 2);
  sim::Time t = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    t = m.access(0, va + (i % (bytes / kLineBytes)) * kLineBytes, false, t);
    i += 97;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_AccessMissRemote);

void BM_Translate(benchmark::State& state) {
  arch::Machine m(arch::Topology{.nodes = 16});
  arch::VAddr va = 0;
  for (int r = 0; r < 16; ++r) {
    va = m.vm().allocate(1u << 20, arch::MemClass::kFarShared, "r");
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.vm().translate(va + (i++ % 1024) * 1024, 3));
  }
}
BENCHMARK(BM_Translate);

void BM_Fft1K(benchmark::State& state) {
  std::vector<fft::Complex> v(1024);
  sim::Rng rng(5);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    fft::transform(v.data(), v.size(), 1, -1);
    benchmark::DoNotOptimize(v[1]);
  }
}
BENCHMARK(BM_Fft1K);

}  // namespace

BENCHMARK_MAIN();
