// Figure 3: Cost of Barrier Synchronization.
//
// Two metrics as defined in section 4.2, for high-locality and uniform
// placements plus the single-hypernode reference of the authors' earlier
// study [24]:
//   * Last In - First Out: minimum time from the last thread entering the
//     barrier to the first thread continuing (~3.5 us on one hypernode,
//     +~1 us once a second hypernode is involved);
//   * Last In - Last Out: minimum time from the last thread entering to the
//     last thread continuing (~2 us per thread beyond the second on one
//     hypernode, with an additional penalty across hypernodes).
//
// Methodology mirrors the paper: timestamps before entry and after exit of
// every thread, many trials, minima reported.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/rt/runtime.h"
#include "spp/rt/sync.h"

namespace {

using namespace spp;

struct BarrierCost {
  double lifo_us;  ///< last in -> first out
  double lilo_us;  ///< last in -> last out
};

BarrierCost barrier_cost(unsigned nodes, unsigned nthreads,
                         rt::Placement placement, unsigned trials) {
  rt::Runtime runtime(arch::Topology{.nodes = nodes});
  double best_lifo = 1e300, best_lilo = 1e300;
  runtime.run([&] {
    rt::Barrier barrier(runtime, nthreads);
    std::vector<sim::Time> entry(nthreads), exit_t(nthreads);
    for (unsigned k = 0; k < trials; ++k) {
      runtime.parallel(nthreads, placement, [&](unsigned i, unsigned) {
        // Align first (cancels thread-creation stagger), then stagger
        // arrivals in a per-trial permuted order so the minimum over trials
        // samples favorable orderings, as the paper's minima do.
        barrier.wait();
        runtime.work_flops(5000.0 * ((i * 5 + k * 3) % nthreads) + 130.0 * (k % 3));
        entry[i] = runtime.now();
        barrier.wait();
        exit_t[i] = runtime.now();
      });
      const sim::Time last_in = *std::max_element(entry.begin(), entry.end());
      const sim::Time first_out =
          *std::min_element(exit_t.begin(), exit_t.end());
      const sim::Time last_out =
          *std::max_element(exit_t.begin(), exit_t.end());
      best_lifo = std::min(best_lifo, sim::to_usec(first_out - last_in));
      best_lilo = std::min(best_lilo, sim::to_usec(last_out - last_in));
    }
  });
  return {best_lifo, best_lilo};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 3", "Cost of Barrier Synchronization", opts);
  const unsigned trials = opts.full ? 40 : 8;

  std::printf("%8s | %12s %12s | %12s %12s | %12s %12s\n", "threads",
              "hl_lifo_us", "hl_lilo_us", "uni_lifo_us", "uni_lilo_us",
              "1node_lifo", "1node_lilo");
  for (unsigned n = 2; n <= 16; ++n) {
    const BarrierCost hl =
        barrier_cost(2, n, rt::Placement::kHighLocality, trials);
    const BarrierCost un = barrier_cost(2, n, rt::Placement::kUniform, trials);
    if (n <= 8) {
      const BarrierCost one =
          barrier_cost(1, n, rt::Placement::kHighLocality, trials);
      std::printf("%8u | %12.2f %12.2f | %12.2f %12.2f | %12.2f %12.2f\n", n,
                  hl.lifo_us, hl.lilo_us, un.lifo_us, un.lilo_us, one.lifo_us,
                  one.lilo_us);
    } else {
      std::printf("%8u | %12.2f %12.2f | %12.2f %12.2f | %12s %12s\n", n,
                  hl.lifo_us, hl.lilo_us, un.lifo_us, un.lilo_us, "-", "-");
    }
  }

  const BarrierCost one8 =
      barrier_cost(1, 8, rt::Placement::kHighLocality, trials);
  const BarrierCost hl16 =
      barrier_cost(2, 16, rt::Placement::kHighLocality, trials);
  const BarrierCost one2 =
      barrier_cost(1, 2, rt::Placement::kHighLocality, trials);
  std::printf("\nderived metrics                          measured   paper\n");
  std::printf("one-node last-in/first-out (us)          %8.2f   ~3.5\n",
              one8.lifo_us);
  std::printf("two-node extra lifo cost (us)            %8.2f   ~1\n",
              hl16.lifo_us - one8.lifo_us);
  std::printf("one-node release slope (us/thread)       %8.2f   ~2\n",
              (one8.lilo_us - one2.lilo_us) / 6.0);
  return 0;
}
