// Figure 2: Cost of Fork-Join.
//
// Fork-join time (us) versus number of threads spawned, with the two thread
// placements of section 4: high locality (first 8 threads on one hypernode)
// and uniform distribution (equal threads per hypernode).
//
// Paper calibration targets:
//   * ~10 us per extra thread pair, high locality within one hypernode;
//   * ~20 us per extra thread pair, uniform across two hypernodes;
//   * a ~50 us step once a second hypernode becomes involved.
#include <cstdio>

#include "bench/bench_common.h"
#include "spp/rt/runtime.h"
#include "spp/sim/stats.h"

namespace {

using namespace spp;

sim::Time forkjoin_time(unsigned nthreads, rt::Placement placement,
                        unsigned trials) {
  rt::Runtime runtime(arch::Topology{.nodes = 2});
  sim::RunningStat stat;
  runtime.run([&] {
    for (unsigned k = 0; k < trials; ++k) {
      const sim::Time t0 = runtime.now();
      runtime.parallel(nthreads, placement, [](unsigned, unsigned) {});
      stat.add(static_cast<double>(runtime.now() - t0));
    }
  });
  return static_cast<sim::Time>(stat.min());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 2", "Cost of Fork-Join", opts);
  const unsigned trials = opts.full ? 50 : 10;

  std::printf("%8s %18s %18s\n", "threads", "high_locality_us",
              "uniform_us");
  double prev_hl = 0, prev_un = 0;
  for (unsigned n = 1; n <= 16; ++n) {
    const double hl =
        sim::to_usec(forkjoin_time(n, rt::Placement::kHighLocality, trials));
    const double un =
        sim::to_usec(forkjoin_time(n, rt::Placement::kUniform, trials));
    std::printf("%8u %18.1f %18.1f\n", n, hl, un);
    prev_hl = hl;
    prev_un = un;
  }
  (void)prev_hl;
  (void)prev_un;

  const double hl2 = sim::to_usec(
      forkjoin_time(2, rt::Placement::kHighLocality, trials));
  const double hl8 = sim::to_usec(
      forkjoin_time(8, rt::Placement::kHighLocality, trials));
  const double un2 =
      sim::to_usec(forkjoin_time(2, rt::Placement::kUniform, trials));
  const double un16 =
      sim::to_usec(forkjoin_time(16, rt::Placement::kUniform, trials));
  const double hl9 = sim::to_usec(
      forkjoin_time(9, rt::Placement::kHighLocality, trials));

  std::printf("\nderived metrics                      measured   paper\n");
  std::printf("us per thread pair, high locality    %8.1f   ~10\n",
              (hl8 - hl2) / 3.0);
  std::printf("us per thread pair, uniform          %8.1f   ~20\n",
              (un16 - un2) / 7.0);
  std::printf("second-hypernode step (us)           %8.1f   ~50\n",
              hl9 - hl8 - (hl8 - hl2) / 3.0);
  return 0;
}
