// Ablation (section 7 future work): static vs dynamic vs guided loop
// scheduling.  "More dynamic load balancing and lightweight threads needs to
// be developed and implemented on this system to ease the programming
// burden" -- this bench quantifies what that would have bought, and what it
// costs (each dynamic grab is an uncached fetch-and-add at the shared
// counter's home hypernode).
#include <cstdio>

#include "bench/bench_common.h"
#include "spp/rt/loops.h"
#include "spp/rt/runtime.h"

namespace {

using namespace spp;

double loop_ms(rt::Schedule schedule, bool imbalanced, std::size_t n,
               std::size_t chunk) {
  rt::Runtime runtime(arch::Topology{.nodes = 2});
  rt::LoopOptions opts;
  opts.schedule = schedule;
  opts.chunk = chunk;
  runtime.run([&] {
    rt::parallel_for(runtime, n, 16, rt::Placement::kUniform, opts,
                     [&](std::size_t i) {
                       // Uniform work, or triangular (last iterations are
                       // the heaviest -- the worst case for static blocks).
                       const double w =
                           imbalanced ? static_cast<double>(i) * 0.5 : 60.0;
                       runtime.work_flops(20.0 + w);
                     });
  });
  return sim::to_seconds(runtime.elapsed()) * 1e3;
}

const char* name(rt::Schedule s) {
  switch (s) {
    case rt::Schedule::kStatic:
      return "static";
    case rt::Schedule::kDynamic:
      return "dynamic";
    case rt::Schedule::kGuided:
      return "guided";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Ablation", "Loop scheduling (section 7 future work)",
                     opts);
  const std::size_t n = opts.full ? 16384 : 4096;

  std::printf("%10s %8s | %12s %12s\n", "schedule", "chunk", "uniform_ms",
              "triangular_ms");
  for (const auto s : {rt::Schedule::kStatic, rt::Schedule::kDynamic,
                       rt::Schedule::kGuided}) {
    for (const std::size_t chunk : {8u, 64u}) {
      if (s == rt::Schedule::kStatic && chunk != 8u) continue;
      std::printf("%10s %8zu | %12.3f %12.3f\n", name(s),
                  s == rt::Schedule::kStatic ? 0 : chunk,
                  loop_ms(s, false, n, chunk), loop_ms(s, true, n, chunk));
    }
  }
  std::printf(
      "\nexpected shape: static wins on uniform work (no counter traffic);\n"
      "dynamic/guided win under imbalance; guided needs fewer grabs than\n"
      "small-chunk dynamic.\n");
  return 0;
}
