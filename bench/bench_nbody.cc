// Figure 8: N-Body performance scaling.
//
// Parallel speedup of the tree code for three problem sizes, in the paper's
// two configurations: 1,2,4,8 processors on a single hypernode and 2,4,8,16
// across two hypernodes.  Reference points from section 5.3.2:
//   * 27.5 Mflop/s single-processor rate (speedups measured against it);
//   * 2-7% degradation across hypernodes at equal processor counts;
//   * 384 Mflop/s at 16 processors;
//   * a highly vectorized C90 tree code reaches 120 Mflop/s on one head.
//
// Paper sizes are 32K/256K/2M particles; default scale runs 2K/8K/32K.
// --full runs 32K/256K (the 2M case needs >1h of host time; scale the trend).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/apps/nbody/nbody.h"
#include "spp/apps/nbody/nbody_pvm.h"
#include "spp/c90/c90.h"

namespace {

using namespace spp;
using nbody::NbodyConfig;

struct Point {
  unsigned procs;
  double mflops;
  double force_seconds;
};

Point run_case(const NbodyConfig& cfg, unsigned nodes, unsigned np) {
  // Both configurations run on the same two-hypernode machine, as the
  // paper's do: "1 node" packs the threads onto hypernode 0, "2 node"
  // spreads them, so only the placement differs.
  const auto placement =
      nodes > 1 ? rt::Placement::kUniform : rt::Placement::kHighLocality;
  rt::Runtime runtime(arch::Topology{.nodes = 2});
  nbody::NbodyShared app(runtime, cfg, np, placement);
  nbody::NbodyResult res;
  runtime.run([&] { res = app.run(); });
  return {np, res.mflops, sim::to_seconds(res.force_time)};
}

void run_size(std::size_t n, unsigned steps) {
  NbodyConfig cfg;
  cfg.n = n;
  cfg.steps = steps;
  std::printf("\n--- %zu particles ---\n", n);
  std::printf("%6s | %14s %9s | %14s %9s | %8s\n", "procs", "1node_Mflops",
              "speedup", "2node_Mflops", "speedup", "degr_%");

  double base = 0;
  for (unsigned np : {1u, 2u, 4u, 8u, 16u}) {
    Point one{0, 0, 0}, two{0, 0, 0};
    const bool have_one = np <= 8;
    if (have_one) one = run_case(cfg, 1, np);
    if (np >= 2) two = run_case(cfg, 2, np);
    if (np == 1) base = one.mflops;
    const double degr =
        (have_one && np >= 2 && one.force_seconds > 0)
            ? 100.0 * (two.force_seconds / one.force_seconds - 1.0)
            : 0.0;
    if (have_one && np >= 2) {
      std::printf("%6u | %14.1f %9.2f | %14.1f %9.2f | %8.1f\n", np,
                  one.mflops, one.mflops / base, two.mflops,
                  two.mflops / base, degr);
    } else if (have_one) {
      std::printf("%6u | %14.1f %9.2f | %14s %9s | %8s\n", np, one.mflops,
                  one.mflops / base, "-", "-", "-");
    } else {
      std::printf("%6u | %14s %9s | %14.1f %9.2f | %8s\n", np, "-", "-",
                  two.mflops, two.mflops / base, "-");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 8", "N-Body tree code scaling", opts);

  if (opts.full) {
    run_size(32768, 1);
    run_size(262144, 1);
    std::printf("\n(2M-particle case omitted: >1h of host time; the trend\n"
                " with problem size is visible from 32K -> 256K)\n");
  } else {
    run_size(1024, 2);
    run_size(4096, 1);
    run_size(16384, 1);
  }

  c90::C90Model model;
  std::printf("\nreference points                   measured   paper\n");
  {
    NbodyConfig cfg;
    cfg.n = opts.full ? 32768 : 4096;
    cfg.steps = 1;
    const Point p1 = run_case(cfg, 1, 1);
    const Point p16 = run_case(cfg, 2, 16);
    std::printf("1-processor Mflop/s                %8.1f   27.5\n",
                p1.mflops);
    std::printf("16-processor Mflop/s               %8.1f   384\n",
                p16.mflops);
  }
  std::printf("C90 tree code Mflop/s (model)      %8.1f   120\n",
              model.sustained_mflops(c90::treecode_profile(1e9)));

  // Section 5.3.2's PVM version: "overall performance is degraded relative
  // to the shared memory version of the code."
  {
    NbodyConfig cfg;
    cfg.n = opts.full ? 16384 : 2048;
    cfg.steps = 3;
    cfg.theta = 1.1;  // modest force cost so the broadcast traffic shows
    rt::Runtime r1(arch::Topology{.nodes = 2});
    nbody::NbodyShared sh(r1, cfg, 8, rt::Placement::kUniform);
    nbody::NbodyResult rs;
    r1.run([&] { rs = sh.run(); });
    rt::Runtime r2(arch::Topology{.nodes = 2});
    nbody::NbodyPvm pv(r2, cfg, 8, rt::Placement::kUniform);
    nbody::NbodyResult rp;
    r2.run([&] { rp = pv.run(); });
    std::printf("PVM version vs shared, 8 procs     %8.2fx   degraded\n",
                sim::to_seconds(rp.sim_time) / sim::to_seconds(rs.sim_time));
  }
  return 0;
}
