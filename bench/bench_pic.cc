// Figure 6 and Table 1: the 3D electrostatic PIC code.
//
// Time to solution and speedup for the shared-memory and PVM versions on
// 1..16 processors, two problem sizes, with the Cray C90 single-head
// reference (Table 1: 32x32x32 / 294912 particles -> 355 Mflop/s, 112.9 s;
// 64x64x32 / 1179648 particles -> 369 Mflop/s, 436.4 s; both 500 steps).
//
// Default scale runs reduced meshes and steps; the `paper-equivalent time`
// column extrapolates the measured per-step time to the paper's 500 steps so
// curves are comparable in shape.  --full uses the paper's meshes (still
// with reduced step counts; per-step cost is what the curves are made of).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/apps/pic/pic.h"
#include "spp/apps/pic/pic_pvm.h"
#include "spp/c90/c90.h"

namespace {

using namespace spp;
using pic::PicConfig;

struct SizeSpec {
  const char* name;
  PicConfig cfg;
  double paper_c90_mflops;  ///< Table 1.
  double paper_c90_seconds;
};

void run_size(const SizeSpec& spec) {
  const PicConfig& cfg = spec.cfg;
  std::printf("\n--- %s: %zux%zux%zu mesh, %zu particles, %u steps ---\n",
              spec.name, cfg.nx, cfg.ny, cfg.nz, cfg.particles(), cfg.steps);
  std::printf("%6s | %12s %9s | %12s %9s | %10s\n", "procs", "shared_s500",
              "speedup", "pvm_s500", "speedup", "sh_Mflops");

  const double scale_to_500 = 500.0 / cfg.steps;
  double shared1 = 0, pvm1 = 0;
  for (unsigned np : {1u, 2u, 4u, 8u, 16u}) {
    const unsigned nodes = np > 8 ? 2u : 1u;
    const auto placement =
        nodes > 1 ? rt::Placement::kUniform : rt::Placement::kHighLocality;
    double t_shared, t_pvm, mflops;
    {
      rt::Runtime runtime(arch::Topology{.nodes = nodes});
      pic::PicShared app(runtime, cfg, np, placement);
      pic::PicResult res;
      runtime.run([&] { res = app.run(); });
      t_shared = sim::to_seconds(res.sim_time) * scale_to_500;
      mflops = res.mflops;
    }
    {
      rt::Runtime runtime(arch::Topology{.nodes = nodes});
      pic::PicPvm app(runtime, cfg, np, placement);
      pic::PicResult res;
      runtime.run([&] { res = app.run(); });
      t_pvm = sim::to_seconds(res.sim_time) * scale_to_500;
    }
    if (np == 1) {
      shared1 = t_shared;
      pvm1 = t_pvm;
    }
    std::printf("%6u | %12.2f %9.2f | %12.2f %9.2f | %10.1f\n", np, t_shared,
                shared1 / t_shared, t_pvm, pvm1 / t_pvm, mflops);
  }

  // C90 single-head reference line (flat in Figure 6).
  const double flops500 = 500.0 * pic::flops_per_step(cfg);
  c90::C90Model c90model;
  const auto prof = c90::pic_profile(flops500, cfg.cells());
  std::printf("C90 1 head (model): %.2f s at %.0f Mflop/s",
              c90model.seconds(prof), c90model.sustained_mflops(prof));
  if (spec.paper_c90_mflops > 0) {
    std::printf("   [paper: %.1f s at %.0f Mflop/s]",
                spec.paper_c90_seconds, spec.paper_c90_mflops);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Figure 6 / Table 1",
                     "PIC time-to-solution and speedup, shared vs PVM", opts);

  std::vector<SizeSpec> sizes;
  if (opts.full) {
    PicConfig small;
    small.nx = small.ny = small.nz = 32;
    small.steps = 4;
    PicConfig large;
    large.nx = large.ny = 64;
    large.nz = 32;
    large.steps = 2;
    sizes.push_back({"small (paper 32^3)", small, 355.0, 112.9});
    sizes.push_back({"large (paper 64x64x32)", large, 369.0, 436.4});
  } else {
    PicConfig small;
    small.nx = small.ny = small.nz = 8;
    small.steps = 4;
    PicConfig large;
    large.nx = large.ny = 16;
    large.nz = 16;
    large.steps = 2;
    sizes.push_back({"small (reduced)", small, 0, 0});
    sizes.push_back({"large (reduced)", large, 0, 0});
  }
  for (const auto& spec : sizes) run_size(spec);

  std::printf(
      "\npaper shape: shared-memory curve consistently above PVM (PVM\n"
      "reaches 'almost one half the performance'); both scale to 16 procs\n"
      "with the shared version approaching one C90 head per hypernode.\n");
  return 0;
}
