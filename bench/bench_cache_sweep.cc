// Section 6 (ablation): in-cache versus out-of-cache application behaviour.
//
// "Problems that largely resided in cache versus those that were big enough
//  to consume large portions of main memory easily show performance
//  difference of a factor of three for the same application and this just on
//  a single hypernode."
//
// A stride-1 accumulate kernel (representative of the apps' sweeps) runs on
// 8 processors of one hypernode over working sets from cache-resident to 4x
// cache capacity; reported rate normalizes to the resident case.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/rt/garray.h"
#include "spp/rt/runtime.h"

namespace {

using namespace spp;

/// Mflop/s of an 8-thread sweep kernel over `kb` KB of far-shared data.
double sweep_rate(std::size_t kb, unsigned reps) {
  rt::Runtime runtime(arch::Topology{.nodes = 1});
  const std::size_t n = kb * 1024 / sizeof(double);
  rt::GlobalArray<double> data(runtime, n, arch::MemClass::kFarShared,
                               "sweep");
  runtime.run([&] {
    runtime.parallel(8, rt::Placement::kHighLocality,
                     [&](unsigned tid, unsigned nt) {
                       const std::size_t lo = tid * n / nt;
                       const std::size_t hi = (tid + 1) * n / nt;
                       for (unsigned r = 0; r < reps; ++r) {
                         for (std::size_t i = lo; i < hi; i += 4) {
                           data.write(i, data.read(i) + 1.0);
                           runtime.work_flops(2);
                         }
                       }
                     });
  });
  const double flops = runtime.machine().perf().total().flops;
  return flops / (sim::to_seconds(runtime.elapsed()) * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Section 6 (ablation)",
                     "In-cache vs out-of-cache performance", opts);
  const unsigned reps = opts.full ? 8 : 3;

  // 8 CPUs x 1 MB caches = 8 MB aggregate.
  std::printf("%14s %12s %10s\n", "working_set", "Mflop/s", "slowdown");
  double resident = 0;
  for (std::size_t kb : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
    const double rate = sweep_rate(kb, reps);
    if (resident == 0) resident = rate;
    std::printf("%11zu KB %12.1f %9.2fx\n", kb, rate, resident / rate);
  }
  std::printf("\npaper: 'easily ... a factor of three' between cache-resident\n"
              "and memory-resident problems on a single hypernode.\n");
  return 0;
}
