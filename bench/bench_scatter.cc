// Ablation: the scatter-add problem (sections 5.2.1 and 6).
//
// Compares the three strategies of spp::lib::scatter_add under low and high
// index contention, on 16 processors across two hypernodes.  This is the
// design space behind the PIC deposit (private staging) and the FEM
// point-phase aggregation (owner-computes), and the reason the paper calls
// scatter-add out as a missing fine-tuned library.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "spp/lib/scatter_add.h"
#include "spp/sim/rng.h"

namespace {

using namespace spp;

double scatter_ms(lib::ScatterStrategy strategy, std::size_t n, std::size_t m,
                  bool contended) {
  rt::Runtime runtime(arch::Topology{.nodes = 2});
  rt::GlobalArray<double> target(runtime, n, arch::MemClass::kFarShared, "t");
  sim::Rng rng(99);
  std::vector<std::int32_t> idx(m);
  std::vector<double> val(m, 1.0);
  for (std::size_t k = 0; k < m; ++k) {
    idx[k] = static_cast<std::int32_t>(contended ? rng.below(8)
                                                 : rng.below(n));
  }
  const auto stats = lib::scatter_add(runtime, target, idx, val, 16,
                                      rt::Placement::kUniform, strategy);
  return sim::to_seconds(stats.sim_time) * 1e3;
}

const char* name(lib::ScatterStrategy s) {
  switch (s) {
    case lib::ScatterStrategy::kPrivate:
      return "private+tree";
    case lib::ScatterStrategy::kLocked:
      return "striped-locks";
    case lib::ScatterStrategy::kOwner:
      return "owner-computes";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Ablation", "Scatter-add strategies (sections 5.2/6)",
                     opts);
  const std::size_t n = opts.full ? 16384 : 2048;
  const std::size_t m = opts.full ? 200000 : 40000;

  std::printf("%16s | %12s %14s\n", "strategy", "spread_ms", "contended_ms");
  for (const auto s :
       {lib::ScatterStrategy::kPrivate, lib::ScatterStrategy::kLocked,
        lib::ScatterStrategy::kOwner}) {
    std::printf("%16s | %12.3f %14.3f\n", name(s), scatter_ms(s, n, m, false),
                scatter_ms(s, n, m, true));
  }
  std::printf(
      "\nexpected shape: private staging is immune to contention; locks\n"
      "collapse when all updates hit a few lines; owner-computes pays P-fold\n"
      "read amplification but never synchronizes.\n");
  return 0;
}
