// Table 2: PPM (PROMETHEUS) performance.
//
//   Grid Size   Tiles    Procs   Mflop/s (paper)
//   120x480     4x16     1       29.9
//   120x480     4x16     2       58.2
//   120x480     4x16     4       118.8
//   120x480     4x16     8       228.5
//   120x480     12x48    1       23.8
//   120x480     12x48    2       47.8
//   120x480     12x48    4       95.9
//   120x480     12x48    8       186.2
//   240x960     4x16     4       118.5
//
// The key shapes: near-linear scaling to 8 processors, the finer 12x48
// tiling uniformly slower (more frame overhead per zone), and the 2x-bigger
// grid matching the small grid's rate at equal processors.
#include <cstdio>

#include "bench/bench_common.h"
#include "spp/apps/ppm/ppm.h"

namespace {

using namespace spp;
using ppm::PpmConfig;

double run_case(std::size_t nx, std::size_t ny, unsigned tx, unsigned ty,
                unsigned np, unsigned steps) {
  PpmConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.tiles_x = tx;
  cfg.tiles_y = ty;
  cfg.steps = steps;
  rt::Runtime runtime(arch::Topology{.nodes = 1});
  ppm::PpmTiled app(runtime, cfg, np, rt::Placement::kHighLocality);
  app.init_blast(2.0, static_cast<double>(nx) / 6.0);
  ppm::PpmResult res;
  runtime.run([&] { res = app.run(); });
  return res.mflops;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Table 2", "PPM hydrodynamics performance", opts);

  struct Row {
    std::size_t nx, ny;
    unsigned tx, ty, procs;
    double paper;
  };
  const Row paper_rows[] = {
      {120, 480, 4, 16, 1, 29.9},  {120, 480, 4, 16, 2, 58.2},
      {120, 480, 4, 16, 4, 118.8}, {120, 480, 4, 16, 8, 228.5},
      {120, 480, 12, 48, 1, 23.8}, {120, 480, 12, 48, 2, 47.8},
      {120, 480, 12, 48, 4, 95.9}, {120, 480, 12, 48, 8, 186.2},
      {240, 960, 4, 16, 4, 118.5},
  };

  const unsigned steps = opts.full ? 2 : 1;
  const double shrink = opts.full ? 1.0 : 0.5;

  std::printf("%10s %8s %6s | %10s %10s\n", "grid", "tiles", "procs",
              "Mflop/s", "paper");
  for (const Row& r : paper_rows) {
    const auto nx = static_cast<std::size_t>(static_cast<double>(r.nx) * shrink);
    const auto ny = static_cast<std::size_t>(static_cast<double>(r.ny) * shrink);
    const double mflops = run_case(nx, ny, r.tx, r.ty, r.procs, steps);
    char grid[32], tiles[16];
    std::snprintf(grid, sizeof grid, "%zux%zu", nx, ny);
    std::snprintf(tiles, sizeof tiles, "%ux%u", r.tx, r.ty);
    std::printf("%10s %8s %6u | %10.1f %10.1f\n", grid, tiles, r.procs,
                mflops, r.paper);
  }
  std::printf("\nshapes to check: ~linear scaling 1->8; 12x48 tiling slower\n"
              "than 4x16 at every processor count; 240x960@4 ~= 120x480@4.\n");
  return 0;
}
