// Shared helpers for the paper-reproduction bench harness.
//
// Every bench binary regenerates one table or figure from the paper,
// printing the same rows/series with a `paper=` column carrying the
// published value where one exists.  `--full` switches from CI-sized runs to
// the paper's actual problem sizes (documented per bench).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace spp::bench {

struct Options {
  bool full = false;  ///< run the paper's actual sizes (slow).

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) o.full = true;
    }
    return o;
  }
};

inline void header(const char* id, const char* title, const Options& opts) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("scale: %s (use --full for the paper's problem sizes)\n",
              opts.full ? "FULL (paper)" : "default (reduced)");
  std::printf("==============================================================\n");
}

}  // namespace spp::bench
