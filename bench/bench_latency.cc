// Sections 2.6 and 6 (text): the latency hierarchy of the memory system.
//
//   * cache hit: 1 cycle;
//   * miss to FU-local memory / hypernode memory / global cache buffer:
//     approximately 50-60 cycles;
//   * miss to remote-hypernode memory: about a factor of 8 over
//     hypernode-local (range 4-10 depending on conditions).
//
// Measured with dependent-load probes on the simulated machine (lmbench
// style), plus uncached and atomic operation costs used by the runtime.
#include <cstdio>

#include "bench/bench_common.h"
#include "spp/arch/machine.h"

namespace {

using namespace spp;
using arch::kLineBytes;
using arch::kPageBytes;
using arch::Machine;
using arch::MemClass;
using arch::Topology;

/// Global probe clock: must move forward monotonically so each probe sees
/// quiescent (not stale-busy) resources.
sim::Time g_now = 1000000;

/// Average dependent-load latency over `lines` fresh lines from `cpu`.
double probe_cycles(Machine& m, unsigned cpu, arch::VAddr va, unsigned lines,
                    bool reuse) {
  const sim::Time start = g_now;
  for (unsigned k = 0; k < lines; ++k) {
    const arch::VAddr a = va + (reuse ? 0 : k * kLineBytes);
    g_now = m.access(cpu, a, false, g_now);
  }
  return static_cast<double>(sim::to_cycles(g_now - start)) / lines;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = spp::bench::Options::parse(argc, argv);
  spp::bench::header("Sections 2.6/6", "Memory latency hierarchy", opts);
  const unsigned lines = opts.full ? 4096 : 512;

  Machine m(Topology{.nodes = 4});
  auto& vm = m.vm();

  // Lines homed on the probing CPU's own FU: thread-private placement.
  const arch::VAddr fu_local = vm.allocate(
      lines * kLineBytes, MemClass::kThreadPrivate, "probe.fu_local");
  // Lines homed on the probing CPU's hypernode (other FUs included).
  const arch::VAddr node_local = vm.allocate(
      lines * kLineBytes, MemClass::kNearShared, "probe.node", /*home=*/0);
  // Lines homed on a remote hypernode.
  const arch::VAddr remote = vm.allocate(
      lines * kLineBytes, MemClass::kNearShared, "probe.remote", /*home=*/2);

  const double hit = [&] {
    m.access(0, node_local, false, 0);
    return probe_cycles(m, 0, node_local, 64, /*reuse=*/true);
  }();
  const double c_fu = probe_cycles(m, 0, fu_local, lines, false);
  const double c_node = probe_cycles(m, 0, node_local + kLineBytes, lines - 1,
                                     false);
  const double c_remote = probe_cycles(m, 0, remote, lines, false);

  // Gcache: a second CPU of node 0 touches the remote lines the first CPU
  // already pulled into node 0's global cache buffer.
  const double c_gcache = probe_cycles(m, 2, remote, lines, false);

  // Uncached / atomic operations (barrier building blocks).
  Machine m2(Topology{.nodes = 4});
  const arch::VAddr sem_local = m2.vm().allocate(
      kLineBytes, MemClass::kNearShared, "sem.local", 0);
  const arch::VAddr sem_remote = m2.vm().allocate(
      kLineBytes, MemClass::kNearShared, "sem.remote", 2);
  const double unc_local = static_cast<double>(
      sim::to_cycles(m2.access_uncached(0, sem_local, false, 0)));
  const double unc_remote = static_cast<double>(sim::to_cycles(
      m2.access_uncached(0, sem_remote, false, 1000000) - 1000000));
  const double rmw_local = static_cast<double>(
      sim::to_cycles(m2.atomic_rmw(0, sem_local, 2000000) - 2000000));
  const double rmw_remote = static_cast<double>(
      sim::to_cycles(m2.atomic_rmw(0, sem_remote, 3000000) - 3000000));

  std::printf("%-34s %10s %10s\n", "operation", "cycles", "paper");
  std::printf("%-34s %10.1f %10s\n", "cache hit", hit, "1");
  std::printf("%-34s %10.1f %10s\n", "miss, FU-local memory", c_fu, "50-60");
  std::printf("%-34s %10.1f %10s\n", "miss, hypernode memory", c_node,
              "50-60");
  std::printf("%-34s %10.1f %10s\n", "miss, global cache buffer", c_gcache,
              "50-60");
  std::printf("%-34s %10.1f %10s\n", "miss, remote hypernode", c_remote,
              "~8x node");
  std::printf("%-34s %10.1f %10s\n", "uncached read, local", unc_local, "-");
  std::printf("%-34s %10.1f %10s\n", "uncached read, remote", unc_remote, "-");
  std::printf("%-34s %10.1f %10s\n", "atomic rmw, local", rmw_local, "-");
  std::printf("%-34s %10.1f %10s\n", "atomic rmw, remote", rmw_remote, "-");

  std::printf("\nderived metrics                    measured   paper\n");
  std::printf("remote / hypernode miss ratio      %8.2f   ~8 (4-10)\n",
              c_remote / c_node);
  return 0;
}
