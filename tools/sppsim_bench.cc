// sppsim-bench: wall-clock benchmark harness for the simulator itself.
//
// Runs a fixed set of deterministic workloads and times the HOST wall clock
// under one or both conductor backends, emitting one BENCH_<name>.json per
// bench with records of {bench, backend, wall_ns, sim_ns, digest}.  The
// simulated time and the whole-machine PerfCounters digest are the
// correctness oracle: they must be bit-identical across backends, across
// runs, and against a committed baseline (--check).  wall_ns is the only
// field allowed to vary between hosts and is never compared.
//
// Format and CI usage: docs/PERFORMANCE.md.  Exit status: 0 = ok, 1 = sim
// time or digest divergence (between backends or against a baseline),
// 2 = usage or I/O error.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "spp/apps/fem/femgas.h"
#include "spp/apps/nbody/nbody.h"
#include "spp/apps/ppm/ppm.h"
#include "spp/ckpt/durable.h"
#include "spp/memo/memo.h"
#include "spp/lib/psort.h"
#include "spp/lib/scatter_add.h"
#include "spp/rt/conductor.h"
#include "spp/rt/garray.h"
#include "spp/rt/loops.h"
#include "spp/rt/runtime.h"
#include "spp/sim/rng.h"

namespace {

using namespace spp;

struct Measurement {
  sim::Time sim_ns = 0;
  std::uint64_t digest = 0;
};

/// Durable-checkpoint options for the nbody app bench (docs/RECOVERY.md).
/// Disabled by default; when disabled the plain run() path executes and the
/// benches stay bit-identical to their committed baselines.
ckpt::DurableSpec g_durable;

/// --shards: worker count for the pdes backend (0 = library default, i.e.
/// SPP_SHARDS or one worker per hypernode).  Never changes any digest --
/// docs/PERFORMANCE.md, "Sharded PDES backend".
unsigned g_shards = 0;

void apply_shards(rt::Runtime& runtime) {
  if (g_shards != 0) runtime.conductor().set_workers(g_shards);
}

Measurement seal(rt::Runtime& runtime) {
  return {runtime.elapsed(),
          runtime.machine().perf().digest(runtime.elapsed())};
}

// --- workloads -------------------------------------------------------------
// Each bench is deterministic: fixed topology, fixed seeds, no host state.
// "scheduling" is conductor-switch bound (the fiber backend's best case);
// the others stress the memory system through real app/library code.

Measurement bench_scheduling(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 2}, arch::CostModel{}, be);
  apply_shards(runtime);
  const std::size_t n = smoke ? 2048 : 16384;
  rt::LoopOptions opts;
  opts.schedule = rt::Schedule::kDynamic;
  opts.chunk = 8;
  runtime.run([&] {
    rt::parallel_for(runtime, n, 16, rt::Placement::kUniform, opts,
                     [&](std::size_t i) {
                       runtime.work_flops(20.0 + static_cast<double>(i) * 0.5);
                     });
  });
  return seal(runtime);
}

Measurement bench_psort(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 2}, arch::CostModel{}, be);
  apply_shards(runtime);
  const std::size_t n = smoke ? 4096 : 65536;
  rt::GlobalArray<double> data(runtime, n, arch::MemClass::kFarShared,
                               "bench.sort");
  sim::Rng rng(4242);
  for (std::size_t i = 0; i < n; ++i) data.raw(i) = rng.uniform(-100, 100);
  lib::parallel_sort(runtime, data, 8, rt::Placement::kUniform);
  return seal(runtime);
}

Measurement bench_scatter(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 2}, arch::CostModel{}, be);
  apply_shards(runtime);
  const std::size_t n = 1u << 14;
  const std::size_t m = smoke ? (1u << 14) : (1u << 17);
  rt::GlobalArray<double> target(runtime, n, arch::MemClass::kFarShared,
                                 "bench.scatter");
  sim::Rng rng(99);
  std::vector<std::int32_t> idx(m);
  std::vector<double> val(m, 1.0);
  for (std::size_t k = 0; k < m; ++k) {
    idx[k] = static_cast<std::int32_t>(rng.below(n));
  }
  lib::scatter_add(runtime, target, idx, val, 16, rt::Placement::kUniform,
                   lib::ScatterStrategy::kPrivate);
  return seal(runtime);
}

Measurement bench_nbody(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 1}, arch::CostModel{}, be);
  apply_shards(runtime);
  nbody::NbodyConfig cfg;
  cfg.n = smoke ? 256 : 1024;
  cfg.steps = 2;
  nbody::NbodyShared nb(runtime, cfg, 8, rt::Placement::kHighLocality);
  runtime.run([&] {
    if (g_durable.enabled()) {
      (void)nb.run_durable(g_durable);
    } else {
      (void)nb.run();
    }
  });
  return seal(runtime);
}

// The pdes_* benches are the sharded engine's acceptance workloads: the same
// scheduling and nbody codes scaled to a 4-hypernode topology so the engine
// runs one worker per node.  Their committed BENCH_pdes_*.json baselines
// record the fibers-vs-pdes wall-clock ratio alongside the shared digest
// (docs/PERFORMANCE.md, "Sharded PDES backend").

Measurement bench_pdes_scheduling(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 4}, arch::CostModel{}, be);
  apply_shards(runtime);
  const std::size_t n = smoke ? 4096 : 65536;
  rt::LoopOptions opts;
  opts.schedule = rt::Schedule::kStatic;
  runtime.run([&] {
    rt::parallel_for(runtime, n, 32, rt::Placement::kUniform, opts,
                     [&](std::size_t i) {
                       runtime.work_flops(40.0 + static_cast<double>(i & 7));
                     });
  });
  return seal(runtime);
}

// The ppm/fem pairs are the trace-memoization acceptance workloads
// (docs/PERFORMANCE.md, "Trace memoization"): the same app run with
// memoization forced off and forced on.  Their digests MUST be identical --
// the memo engine only fast-forwards charges it proved it can reproduce
// bit-exactly -- and main() cross-checks each <name>_memo bench against its
// <name> base in addition to the per-bench baselines.  Wall-clock ratio
// ppm/ppm_memo is the speedup the memo engine buys.

Measurement run_ppm(rt::ConductorBackend be, bool smoke, memo::Mode mm) {
  rt::Runtime runtime(arch::Topology{.nodes = 2}, arch::CostModel{}, be);
  apply_shards(runtime);
  runtime.set_memo_mode(mm);
  ppm::PpmConfig cfg;
  cfg.nx = smoke ? 48 : 96;
  cfg.ny = smoke ? 48 : 96;
  cfg.tiles_x = 2;
  cfg.tiles_y = 2;
  cfg.steps = smoke ? 8 : 16;
  ppm::PpmTiled app(runtime, cfg, 4, rt::Placement::kHighLocality);
  app.init_sod_x();
  runtime.run([&] { (void)app.run(); });
  return seal(runtime);
}

Measurement bench_ppm(rt::ConductorBackend be, bool smoke) {
  return run_ppm(be, smoke, memo::Mode::kOff);
}

Measurement bench_ppm_memo(rt::ConductorBackend be, bool smoke) {
  return run_ppm(be, smoke, memo::Mode::kOn);
}

Measurement run_fem(rt::ConductorBackend be, bool smoke, memo::Mode mm) {
  rt::Runtime runtime(arch::Topology{.nodes = 2}, arch::CostModel{}, be);
  apply_shards(runtime);
  runtime.set_memo_mode(mm);
  fem::FemConfig cfg;
  cfg.nx = smoke ? 32 : 64;
  cfg.ny = smoke ? 24 : 48;
  cfg.steps = smoke ? 8 : 16;
  fem::FemGas app(runtime, cfg, 4, rt::Placement::kHighLocality);
  app.init_blast(2.0, 3.0);
  runtime.run([&] { (void)app.run(); });
  return seal(runtime);
}

Measurement bench_fem(rt::ConductorBackend be, bool smoke) {
  return run_fem(be, smoke, memo::Mode::kOff);
}

Measurement bench_fem_memo(rt::ConductorBackend be, bool smoke) {
  return run_fem(be, smoke, memo::Mode::kOn);
}

// The *_inner benches isolate the apps' inner-loop CHARGE streams: the same
// arrays, strides, op sizes, and flop charges the PPM sweep and FEM
// element/point/copy loops issue, with the physics arithmetic factored out.
// They measure the simulator-overhead wall clock -- the quantity trace
// memoization fast-forwards -- so their memo-on/off ratio is the engine's
// headline speedup (the whole-app ppm/fem pairs above bound it from below,
// since live physics runs at native speed in both modes).

Measurement run_ppm_inner(rt::ConductorBackend be, bool smoke, memo::Mode mm) {
  rt::Runtime runtime(arch::Topology{.nodes = 1}, arch::CostModel{}, be);
  apply_shards(runtime);
  runtime.set_memo_mode(mm);
  // Per-thread private tile, 4 field planes of h x w zones, swept row-bulk
  // like PpmTiled::sweep_x: one bulk read + one bulk write + one flop
  // charge per row per field.
  const unsigned nthreads = 4;
  const std::size_t w = 64;
  const std::size_t h = smoke ? 32 : 64;
  // Long enough that the two recording passes plus promotion amortize: the
  // memo-on/off ratio approaches the steady-state per-iteration ratio.
  const unsigned steps = smoke ? 128 : 512;
  const std::size_t plane = h * w;
  rt::GlobalArray<double> tile(runtime, nthreads * 4 * plane,
                               arch::MemClass::kFarShared, "bench.ppm_inner");
  runtime.run([&] {
    runtime.parallel(nthreads, rt::Placement::kHighLocality,
                     [&](unsigned tid, unsigned) {
                       const std::size_t base = tid * 4 * plane;
                       for (unsigned s = 0; s < steps; ++s) {
                         runtime.memo_mark(0x01000000);
                         for (unsigned f = 0; f < 4; ++f) {
                           for (std::size_t j = 0; j < h; ++j) {
                             const std::size_t row = base + f * plane + j * w;
                             runtime.read(tile.vaddr(row), w * sizeof(double));
                             runtime.write(tile.vaddr(row), w * sizeof(double));
                           }
                           runtime.work_flops(1400.0 *
                                              static_cast<double>(plane));
                         }
                         runtime.memo_close();
                       }
                     });
  });
  return seal(runtime);
}

Measurement bench_ppm_inner(rt::ConductorBackend be, bool smoke) {
  return run_ppm_inner(be, smoke, memo::Mode::kOff);
}

Measurement bench_ppm_inner_memo(rt::ConductorBackend be, bool smoke) {
  return run_ppm_inner(be, smoke, memo::Mode::kOn);
}

Measurement run_fem_inner(rt::ConductorBackend be, bool smoke, memo::Mode mm) {
  rt::Runtime runtime(arch::Topology{.nodes = 1}, arch::CostModel{}, be);
  apply_shards(runtime);
  runtime.set_memo_mode(mm);
  // FemGas's three inner loops over a fixed synthetic mesh: per-element
  // vertex gathers (small strided reads through a connectivity array),
  // per-point read-modify-write updates, and the bulk state copy
  // (touch_range over the whole slice).
  const unsigned nthreads = 4;
  const std::size_t pts_per = smoke ? 1024 : 2048;
  const std::size_t npts = nthreads * pts_per;
  const unsigned steps = smoke ? 48 : 96;
  rt::GlobalArray<double> u(runtime, 4 * npts, arch::MemClass::kFarShared,
                            "bench.fem_inner.u");
  rt::GlobalArray<double> uold(runtime, 4 * npts, arch::MemClass::kFarShared,
                               "bench.fem_inner.uold");
  rt::GlobalArray<std::int32_t> conn(runtime, 3 * npts,
                                     arch::MemClass::kFarShared,
                                     "bench.fem_inner.conn");
  for (std::size_t e = 0; e < npts; ++e) {
    conn.raw(3 * e + 0) = static_cast<std::int32_t>(e);
    conn.raw(3 * e + 1) = static_cast<std::int32_t>((e + 1) % npts);
    conn.raw(3 * e + 2) = static_cast<std::int32_t>((e + 64) % npts);
  }
  runtime.run([&] {
    runtime.parallel(nthreads, rt::Placement::kHighLocality,
                     [&](unsigned tid, unsigned) {
                       const std::size_t pb = tid * pts_per;
                       const std::size_t pe = pb + pts_per;
                       for (unsigned s = 0; s < steps; ++s) {
                         runtime.memo_mark(0x01000000);
                         // copy_state: bulk read of u, bulk write of uold.
                         u.touch_range(4 * pb, 4 * pts_per, false);
                         uold.touch_range(4 * pb, 4 * pts_per, true);
                         // element phase: connectivity + vertex gathers.
                         for (std::size_t e = pb; e < pe; ++e) {
                           for (int v = 0; v < 3; ++v) {
                             const auto p = static_cast<std::size_t>(
                                 conn.read(3 * e + v));
                             for (int c = 0; c < 4; ++c) {
                               runtime.read(uold.vaddr(4 * p + c),
                                            sizeof(double));
                             }
                           }
                           runtime.work_flops(220.0);
                         }
                         // point phase: read-modify-write of own points.
                         for (std::size_t p = pb; p < pe; ++p) {
                           for (int c = 0; c < 4; ++c) {
                             runtime.read(u.vaddr(4 * p + c), sizeof(double));
                             runtime.write(u.vaddr(4 * p + c), sizeof(double));
                           }
                           runtime.work_flops(9.0);
                         }
                         runtime.memo_close();
                       }
                     });
  });
  return seal(runtime);
}

Measurement bench_fem_inner(rt::ConductorBackend be, bool smoke) {
  return run_fem_inner(be, smoke, memo::Mode::kOff);
}

Measurement bench_fem_inner_memo(rt::ConductorBackend be, bool smoke) {
  return run_fem_inner(be, smoke, memo::Mode::kOn);
}

Measurement bench_pdes_nbody(rt::ConductorBackend be, bool smoke) {
  rt::Runtime runtime(arch::Topology{.nodes = 4}, arch::CostModel{}, be);
  apply_shards(runtime);
  nbody::NbodyConfig cfg;
  cfg.n = smoke ? 512 : 2048;
  cfg.steps = 2;
  nbody::NbodyShared nb(runtime, cfg, 32, rt::Placement::kUniform);
  runtime.run([&] { (void)nb.run(); });
  return seal(runtime);
}

struct BenchDef {
  const char* name;
  Measurement (*fn)(rt::ConductorBackend, bool);
};

constexpr BenchDef kBenches[] = {
    {"scheduling", bench_scheduling},
    {"psort", bench_psort},
    {"scatter", bench_scatter},
    {"nbody", bench_nbody},
    {"ppm", bench_ppm},
    {"ppm_memo", bench_ppm_memo},
    {"fem", bench_fem},
    {"fem_memo", bench_fem_memo},
    {"ppm_inner", bench_ppm_inner},
    {"ppm_inner_memo", bench_ppm_inner_memo},
    {"fem_inner", bench_fem_inner},
    {"fem_inner_memo", bench_fem_inner_memo},
    {"pdes_scheduling", bench_pdes_scheduling},
    {"pdes_nbody", bench_pdes_nbody},
};

/// "<base>_memo" -> "<base>", or "" when `name` is not a memo variant.
std::string memo_base_of(const std::string& name) {
  const std::string suffix = "_memo";
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return "";
  }
  return name.substr(0, name.size() - suffix.size());
}

// --- harness ---------------------------------------------------------------

const char* backend_name(rt::ConductorBackend be) {
  switch (be) {
    case rt::ConductorBackend::kFibers:
      return "fibers";
    case rt::ConductorBackend::kPdes:
      return "pdes";
    default:
      return "threads";
  }
}

struct RunRecord {
  rt::ConductorBackend backend;
  std::uint64_t wall_ns = 0;
  Measurement m;
};

RunRecord timed_run(const BenchDef& b, rt::ConductorBackend be, bool smoke) {
  const auto t0 = std::chrono::steady_clock::now();
  const Measurement m = b.fn(be, smoke);
  const auto t1 = std::chrono::steady_clock::now();
  return {be,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()),
          m};
}

std::string json_path(const std::string& dir, const char* bench) {
  return dir + "/BENCH_" + bench + ".json";
}

/// Host execution context, recorded purely for interpreting wall_ns across
/// machines (a bench timed on 4 pinned cores is not comparable to one on 64
/// free ones).  Informational only: --check never reads these fields.
std::string host_json() {
  std::ostringstream out;
  out << "{\"cpus\": " << std::thread::hardware_concurrency();
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    out << ", \"affinity_cpus\": " << CPU_COUNT(&set);
    // Mask of the first 64 host CPUs, hex, LSB = CPU 0.
    std::uint64_t mask = 0;
    for (int c = 0; c < 64; ++c) {
      if (CPU_ISSET(c, &set)) mask |= std::uint64_t{1} << c;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, mask);
    out << ", \"affinity_mask\": \"" << buf << "\"";
  }
#endif
  out << "}";
  return out.str();
}

bool write_json(const std::string& dir, const char* bench, bool smoke,
                const std::vector<RunRecord>& runs) {
  const std::string path = json_path(dir, bench);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "sppsim-bench: cannot write %s\n", path.c_str());
    return false;
  }
  char digest_buf[32];
  std::snprintf(digest_buf, sizeof digest_buf, "0x%016" PRIx64,
                runs.front().m.digest);
  out << "{\n"
      << "  \"bench\": \"" << bench << "\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"shards\": " << g_shards << ",\n"
      << "  \"host\": " << host_json() << ",\n"
      << "  \"sim_ns\": " << runs.front().m.sim_ns << ",\n"
      << "  \"digest\": \"" << digest_buf << "\",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::snprintf(digest_buf, sizeof digest_buf, "0x%016" PRIx64, r.m.digest);
    out << "    {\"bench\": \"" << bench << "\", \"backend\": \""
        << backend_name(r.backend) << "\", \"wall_ns\": " << r.wall_ns
        << ", \"sim_ns\": " << r.m.sim_ns << ", \"digest\": \"" << digest_buf
        << "\"}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

/// Minimal extractor for the flat JSON this tool writes: finds the FIRST
/// occurrence of `"key":` and parses the value with strtoull (base 0, so
/// quoted "0x..." digests work after skipping the quote).
bool find_u64(const std::string& text, const std::string& key,
              std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '"')) ++p;
  if (p >= text.size()) return false;
  *out = std::strtoull(text.c_str() + p, nullptr, 0);
  return true;
}

bool find_bool(const std::string& text, const std::string& key, bool* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  *out = text.compare(at + needle.size(), 5, " true") == 0;
  return true;
}

/// Compares this run's canonical sim time + digest against a committed
/// BENCH_<name>.json.  Wall time is never compared.
int check_against(const std::string& dir, const char* bench, bool smoke,
                  const Measurement& m) {
  const std::string path = json_path(dir, bench);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sppsim-bench: no baseline %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  bool base_smoke = false;
  std::uint64_t base_sim = 0;
  std::uint64_t base_digest = 0;
  if (!find_bool(text, "smoke", &base_smoke) ||
      !find_u64(text, "sim_ns", &base_sim) ||
      !find_u64(text, "digest", &base_digest)) {
    std::fprintf(stderr, "sppsim-bench: malformed baseline %s\n",
                 path.c_str());
    return 2;
  }
  if (base_smoke != smoke) {
    std::fprintf(stderr,
                 "sppsim-bench: %s baseline is a %s run but this is a %s "
                 "run; sizes differ\n",
                 bench, base_smoke ? "smoke" : "full",
                 smoke ? "smoke" : "full");
    return 2;
  }
  if (base_sim != m.sim_ns || base_digest != m.digest) {
    std::fprintf(stderr,
                 "sppsim-bench: %s DIVERGES from baseline: sim_ns %" PRIu64
                 " vs %" PRIu64 ", digest 0x%016" PRIx64 " vs 0x%016" PRIx64
                 "\n",
                 bench, static_cast<std::uint64_t>(m.sim_ns), base_sim,
                 m.digest, base_digest);
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sppsim-bench [--smoke] [--backend threads|fibers|pdes|both]\n"
      "                    [--shards N] [--bench NAME]...\n"
      "                    [--out DIR | --check DIR]\n"
      "                    [--ckpt-dir DIR [--ckpt-wall-interval SEC] "
      "[--resume]]\n"
      "\n"
      "Benches: scheduling psort scatter nbody ppm ppm_memo fem fem_memo\n"
      "ppm_inner ppm_inner_memo fem_inner fem_inner_memo pdes_scheduling\n"
      "pdes_nbody\n"
      "(default: all).  --backend both runs each bench under every built\n"
      "conductor backend (fibers, threads, pdes) and fails if simulated\n"
      "time or the counter digest differ.  --shards N picks the pdes\n"
      "worker count (default: one per hypernode); digests never depend on\n"
      "it.  --out writes BENCH_<name>.json baselines; --check compares\n"
      "against committed ones (sim time + digest only; wall time is\n"
      "informational).\n"
      "--ckpt-dir makes the nbody bench a durable run (epoch commits to\n"
      "disk, bit-exact --resume; docs/RECOVERY.md) -- its digest then\n"
      "includes the checkpoint charges, so don't mix with --check against\n"
      "non-durable baselines.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string backend = "both";
  std::string out_dir = ".";
  std::string check_dir;
  bool checking = false;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--backend") {
      const char* v = value();
      if (v == nullptr) return usage();
      backend = v;
    } else if (arg == "--shards") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return usage();
      g_shards = static_cast<unsigned>(std::atol(v));
    } else if (arg == "--bench") {
      const char* v = value();
      if (v == nullptr) return usage();
      only.emplace_back(v);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage();
      out_dir = v;
    } else if (arg == "--check") {
      const char* v = value();
      if (v == nullptr) return usage();
      check_dir = v;
      checking = true;
    } else if (arg == "--ckpt-dir") {
      const char* v = value();
      if (v == nullptr) return usage();
      g_durable.dir = v;
    } else if (arg == "--ckpt-wall-interval") {
      const char* v = value();
      if (v == nullptr) return usage();
      g_durable.wall_interval = std::atof(v);
    } else if (arg == "--resume") {
      g_durable.resume = true;
    } else {
      return usage();
    }
  }
  if (!g_durable.enabled() && (g_durable.resume || g_durable.wall_interval > 0)) {
    std::fprintf(stderr,
                 "sppsim-bench: --resume/--ckpt-wall-interval need "
                 "--ckpt-dir\n");
    return usage();
  }

  std::vector<rt::ConductorBackend> backends;
  if (backend == "threads") {
    backends = {rt::ConductorBackend::kThreads};
  } else if (backend == "fibers") {
    if (!rt::fibers_available()) {
      std::fprintf(stderr,
                   "sppsim-bench: fiber backend unavailable in this build\n");
      return 2;
    }
    backends = {rt::ConductorBackend::kFibers};
  } else if (backend == "pdes") {
    backends = {rt::ConductorBackend::kPdes};
  } else if (backend == "both") {
    // Divergence oracle: the sequential fiber backend is the reference and
    // runs first; the sharded pdes engine must match it bit for bit.
    if (rt::fibers_available()) {
      backends = {rt::ConductorBackend::kFibers, rt::ConductorBackend::kThreads,
                  rt::ConductorBackend::kPdes};
    } else {
      std::fprintf(stderr,
                   "sppsim-bench: fiber backend unavailable; comparing the "
                   "OS-thread and pdes backends only\n");
      backends = {rt::ConductorBackend::kThreads, rt::ConductorBackend::kPdes};
    }
  } else {
    return usage();
  }

  std::printf("%-16s %6s | %12s %18s | per-backend wall ms\n", "bench",
              "mode", "sim_ms", "digest");
  int rc = 0;
  // Reference-backend results of completed benches, keyed by name, so each
  // <x>_memo bench can be cross-checked (digest) and ratioed (wall) against
  // its memo-off base when both were selected.
  std::map<std::string, RunRecord> done;
  for (const BenchDef& b : kBenches) {
    if (!only.empty()) {
      bool wanted = false;
      for (const std::string& name : only) wanted = wanted || name == b.name;
      if (!wanted) continue;
    }

    std::vector<RunRecord> runs;
    for (const rt::ConductorBackend be : backends) {
      runs.push_back(timed_run(b, be, smoke));
    }
    const Measurement canon = runs.front().m;
    for (const RunRecord& r : runs) {
      if (r.m.sim_ns != canon.sim_ns || r.m.digest != canon.digest) {
        std::fprintf(stderr,
                     "sppsim-bench: %s BACKEND DIVERGENCE: %s got sim_ns "
                     "%" PRIu64 " digest 0x%016" PRIx64 ", %s got sim_ns "
                     "%" PRIu64 " digest 0x%016" PRIx64 "\n",
                     b.name, backend_name(runs.front().backend),
                     static_cast<std::uint64_t>(canon.sim_ns), canon.digest,
                     backend_name(r.backend),
                     static_cast<std::uint64_t>(r.m.sim_ns), r.m.digest);
        rc = 1;
      }
    }

    std::printf("%-16s %6s | %12.3f 0x%016" PRIx64 " |", b.name,
                smoke ? "smoke" : "full",
                static_cast<double>(canon.sim_ns) / 1e6, canon.digest);
    for (const RunRecord& r : runs) {
      std::printf(" %s=%.1f", backend_name(r.backend),
                  static_cast<double>(r.wall_ns) / 1e6);
    }
    // Speedup of each later backend relative to the first (the reference):
    // >1 means faster.  Wall clock only; never part of the pass/fail oracle.
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[0].wall_ns > 0 && runs[i].wall_ns > 0) {
        std::printf(" (%s %.2fx)", backend_name(runs[i].backend),
                    static_cast<double>(runs[0].wall_ns) /
                        static_cast<double>(runs[i].wall_ns));
      }
    }
    std::printf("\n");

    done[b.name] = runs.front();
    const std::string base = memo_base_of(b.name);
    if (const auto it = done.find(base); !base.empty() && it != done.end()) {
      const RunRecord& plain = it->second;
      if (plain.m.sim_ns != canon.sim_ns || plain.m.digest != canon.digest) {
        std::fprintf(stderr,
                     "sppsim-bench: %s MEMO DIVERGENCE from %s: sim_ns "
                     "%" PRIu64 " vs %" PRIu64 ", digest 0x%016" PRIx64
                     " vs 0x%016" PRIx64 "\n",
                     b.name, base.c_str(),
                     static_cast<std::uint64_t>(canon.sim_ns),
                     static_cast<std::uint64_t>(plain.m.sim_ns), canon.digest,
                     plain.m.digest);
        rc = 1;
      } else if (runs.front().wall_ns > 0) {
        std::printf("  %s: digest matches %s; memo speedup %.2fx\n",
                    b.name, base.c_str(),
                    static_cast<double>(plain.wall_ns) /
                        static_cast<double>(runs.front().wall_ns));
      }
    }

    if (checking) {
      const int c = check_against(check_dir, b.name, smoke, canon);
      if (c != 0 && (rc == 0 || c == 1)) rc = (rc == 0) ? c : rc;
    } else {
      if (!write_json(out_dir, b.name, smoke, runs)) rc = 2;
    }
  }
  return rc;
}
