// sppsim-explore: interactive probe tool for the simulated SPP-1000.
//
//   sppsim-explore latency  [--nodes N] [--l1-kb K]
//   sppsim-explore forkjoin [--nodes N] [--threads T]
//   sppsim-explore barrier  [--nodes N] [--threads T]
//   sppsim-explore message  [--nodes N] [--bytes B]
//   sppsim-explore map      [--nodes N]
//
// A release-style CLI for quick what-if questions ("what does the remote
// miss cost on an 8-node machine with 256 KB caches?") without writing a
// program against the library.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "spp/arch/machine.h"
#include "spp/pvm/pvm.h"
#include "spp/rt/runtime.h"
#include "spp/rt/sync.h"

using namespace spp;

namespace {

struct Args {
  std::string cmd = "latency";
  unsigned nodes = 2;
  unsigned threads = 8;
  std::size_t bytes = 1024;
  std::uint64_t l1_kb = 1024;

  static Args parse(int argc, char** argv) {
    Args a;
    if (argc > 1 && argv[1][0] != '-') a.cmd = argv[1];
    for (int i = 1; i < argc; ++i) {
      auto val = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
          return argv[++i];
        }
        return nullptr;
      };
      if (const char* v = val("--nodes")) a.nodes = std::atoi(v);
      if (const char* v = val("--threads")) a.threads = std::atoi(v);
      if (const char* v = val("--bytes")) a.bytes = std::atoll(v);
      if (const char* v = val("--l1-kb")) a.l1_kb = std::atoll(v);
    }
    if (a.nodes < 1) a.nodes = 1;
    if (a.nodes > 16) a.nodes = 16;
    return a;
  }
};

arch::CostModel cost_for(const Args& a) {
  arch::CostModel cm;
  cm.l1_bytes = a.l1_kb << 10;
  return cm;
}

int cmd_latency(const Args& a) {
  arch::Machine m(arch::Topology{.nodes = a.nodes}, cost_for(a));
  std::printf("machine: %u hypernodes, %u CPUs, L1 %llu KB\n\n", a.nodes,
              m.topo().num_cpus(),
              static_cast<unsigned long long>(a.l1_kb));
  const auto probe = [&](const char* what, unsigned home,
                         sim::Time at) -> void {
    const arch::VAddr va = m.vm().allocate(
        64 * arch::kLineBytes, arch::MemClass::kNearShared, "probe", home);
    sim::Time t = at;
    double sum = 0;
    for (unsigned k = 0; k < 64; ++k) {
      const sim::Time t2 = m.access(0, va + k * arch::kLineBytes, false, t);
      sum += static_cast<double>(sim::to_cycles(t2 - t));
      t = t2;
    }
    std::printf("  %-28s %7.1f cycles\n", what, sum / 64);
  };
  {
    const arch::VAddr va = m.vm().allocate(
        arch::kLineBytes, arch::MemClass::kNearShared, "hit", 0);
    sim::Time t = m.access(0, va, false, 0);
    const sim::Time t2 = m.access(0, va, false, t);
    std::printf("  %-28s %7.1f cycles\n", "cache hit",
                static_cast<double>(sim::to_cycles(t2 - t)));
  }
  probe("hypernode-local miss", 0, 1000000);
  if (a.nodes > 1) probe("remote-hypernode miss", 1, 50000000);
  return 0;
}

int cmd_forkjoin(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  runtime.run([&] {
    const sim::Time t0 = runtime.now();
    runtime.parallel(a.threads, rt::Placement::kUniform,
                     [](unsigned, unsigned) {});
    std::printf("fork-join of %u threads (uniform): %.1f us\n", a.threads,
                sim::to_usec(runtime.now() - t0));
  });
  return 0;
}

int cmd_barrier(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  runtime.run([&] {
    rt::Barrier barrier(runtime, a.threads);
    sim::Time t0 = 0;
    runtime.parallel(a.threads, rt::Placement::kUniform,
                     [&](unsigned tid, unsigned) {
                       barrier.wait();  // warm/align
                       if (tid == 0) t0 = runtime.now();
                       barrier.wait();
                       if (tid == 0) {
                         std::printf("barrier of %u threads: %.2f us "
                                     "(thread 0 view)\n",
                                     a.threads,
                                     sim::to_usec(runtime.now() - t0));
                       }
                     });
  });
  return 0;
}

int cmd_message(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  runtime.run([&] {
    pvm::Pvm vm(runtime);
    vm.spawn(2, rt::Placement::kUniform, [&](pvm::Pvm& vm, int me, int) {
      std::vector<double> buf(a.bytes / 8 + 1, 1.0);
      if (me == 0) {
        pvm::Message m;
        m.pack(buf.data(), buf.size());
        const sim::Time t0 = runtime.now();
        vm.send(1, 1, std::move(m));
        vm.recv(1, 2);
        std::printf("PVM round trip, %zu bytes, %s: %.1f us\n", a.bytes,
                    a.nodes > 1 ? "cross-node" : "local",
                    sim::to_usec(runtime.now() - t0));
      } else {
        pvm::Message m = vm.recv(0, 1);
        m.tag = 2;
        vm.send(0, 2, std::move(m));
      }
    });
  });
  return 0;
}

int cmd_map(const Args& a) {
  arch::Machine m(arch::Topology{.nodes = a.nodes}, cost_for(a));
  std::printf("SPP-1000, %u hypernode(s):\n", a.nodes);
  std::printf("  %u functional units (2 CPUs each), %u CPUs total\n",
              m.topo().num_fus(), m.topo().num_cpus());
  std::printf("  4 SCI rings; FU k of every node on ring k\n");
  std::printf("  L1: %llu KB direct-mapped, %llu-byte lines\n",
              static_cast<unsigned long long>(m.cost().l1_bytes >> 10),
              static_cast<unsigned long long>(arch::kLineBytes));
  std::printf("  gcache: %llu KB per (node, ring)\n",
              static_cast<unsigned long long>(m.cost().gcache_bytes >> 10));
  std::printf("  memory classes: thread_private node_private near_shared "
              "far_shared block_shared\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Args::parse(argc, argv);
  if (a.cmd == "latency") return cmd_latency(a);
  if (a.cmd == "forkjoin") return cmd_forkjoin(a);
  if (a.cmd == "barrier") return cmd_barrier(a);
  if (a.cmd == "message") return cmd_message(a);
  if (a.cmd == "map") return cmd_map(a);
  std::fprintf(stderr,
               "usage: sppsim-explore latency|forkjoin|barrier|message|map "
               "[--nodes N] [--threads T] [--bytes B] [--l1-kb K]\n");
  return 2;
}
