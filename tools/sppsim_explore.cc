// sppsim-explore: interactive probe tool for the simulated SPP-1000.
//
//   sppsim-explore latency  [--nodes N] [--l1-kb K]
//   sppsim-explore forkjoin [--nodes N] [--threads T]
//   sppsim-explore barrier  [--nodes N] [--threads T]
//   sppsim-explore message  [--nodes N] [--bytes B]
//   sppsim-explore chaos    [--nodes N] [--bytes B] [--rounds R]
//   sppsim-explore chaos-disk [--nodes N] [--threads T]
//   sppsim-explore check    [--nodes N] [--threads T]
//   sppsim-explore survive  [--nodes N] [--threads T]
//   sppsim-explore run      --app APP [--steps S] [--ckpt-dir DIR] [--resume]
//   sppsim-explore map      [--nodes N]
//
// Any runtime-backed command accepts --fault-plan FILE (docs/FAULTS.md) to
// run under injected faults; `chaos` uses a built-in lossy plan when no file
// is given, verifies every payload round-trips intact under full checking,
// and prints the fault/recovery counters afterwards.  `survive` kills a CPU
// mid-run in all four applications with checkpointing enabled, verifies each
// one recovers to the fault-free answer, then SIGKILLs whole durable runs
// mid-flight and verifies --resume reproduces the uninterrupted digest
// (docs/RECOVERY.md).  Both exit nonzero on divergence or an oracle firing.
//
// `chaos-disk` is `survive`'s host-filesystem sibling (docs/RECOVERY.md,
// "Host I/O faults & the degradation ladder"): one soak scenario per
// injected fault class -- EIO, short write, fsync failure, persistent
// ENOSPC, torn rename, read-side bit rot -- each a forked durable run that
// is SIGKILLed mid-flight and/or degrades, then resumed; every resume must
// reach the uninterrupted run's exact PerfCounters digest and never load a
// corrupt epoch.  Exits nonzero on any divergence.
//
// `run` executes one application end to end and prints its PerfCounters
// digest.  With --ckpt-dir it is a durable run: epochs are committed to disk
// (docs/RECOVERY.md), SIGINT/SIGTERM flush a final checkpoint and exit at the
// next boundary, and --resume continues a killed run bit-exactly.
// --watchdog SEC aborts (exit 3) with a wait-for report if the simulation
// stops making progress for that many wall-seconds.
//
// Exit codes are pinned in spp/rt/exit_codes.h: 0 ok, 1 scenario failure,
// 2 usage, 3 watchdog stall, 4 permanent-I/O degradation.
//
// A release-style CLI for quick what-if questions ("what does the remote
// miss cost on an 8-node machine with 256 KB caches?") without writing a
// program against the library.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "spp/apps/fem/femgas.h"
#include "spp/apps/nbody/nbody.h"
#include "spp/apps/nbody/nbody_pvm.h"
#include "spp/apps/pic/pic.h"
#include "spp/apps/pic/pic_pvm.h"
#include "spp/apps/ppm/ppm.h"
#include "spp/arch/machine.h"
#include "spp/check/check.h"
#include "spp/ckpt/durable.h"
#include "spp/fault/fault.h"
#include "spp/io/io.h"
#include "spp/prof/profiler.h"
#include "spp/pvm/pvm.h"
#include "spp/rt/exit_codes.h"
#include "spp/rt/runtime.h"
#include "spp/rt/sync.h"
#include "spp/rt/watchdog.h"

using namespace spp;

namespace {

constexpr const char kUsage[] =
    "usage: sppsim-explore "
    "latency|forkjoin|barrier|message|chaos|chaos-disk|check|survive|run|"
    "map\n"
    "  common:  [--nodes N] [--threads T] [--bytes B] [--l1-kb K]\n"
    "           [--rounds R] [--fault-plan FILE] [--shards N]\n"
    "  run:     --app nbody|fem|pic|ppm|nbody-pvm|pic-pvm [--steps S]\n"
    "           [--ckpt-dir DIR] [--ckpt-interval K] "
    "[--ckpt-wall-interval SEC]\n"
    "           [--resume] [--watchdog SEC] [--kill-after-writes N]\n"
    "  exit:    0 ok, 1 failure, 2 usage, 3 watchdog stall, 4 permanent\n"
    "           host-I/O degradation (spp/rt/exit_codes.h)\n";

struct Args {
  std::string cmd = "latency";
  unsigned nodes = 2;
  unsigned threads = 8;
  std::size_t bytes = 1024;
  std::uint64_t l1_kb = 1024;
  unsigned rounds = 64;
  /// --shards N selects the sharded pdes conductor with N worker threads
  /// (0 = flag absent: keep the SPP_CONDUCTOR / SPP_SHARDS environment).
  /// Digests never depend on it -- a durable run killed at one shard count
  /// resumes bit-exact at another (docs/PERFORMANCE.md, "Sharded PDES
  /// backend").
  unsigned shards = 0;
  std::string fault_plan;  ///< path to a text fault plan, "" = none.
  // `run` subcommand (durable checkpoints; docs/RECOVERY.md):
  std::string app = "nbody";
  unsigned steps = 0;               ///< 0 = the app's default.
  std::string ckpt_dir;             ///< "" = durability off.
  std::uint64_t ckpt_interval = 1;  ///< sim steps per epoch.
  double ckpt_wall = 0.0;           ///< min wall-seconds between disk writes.
  bool resume = false;
  double watchdog = 0.0;            ///< stall abort threshold, 0 = off.
  unsigned kill_after_writes = 0;   ///< test hook: SIGKILL self after N commits.

  /// Strict parse: unknown subcommands or flags (and flags missing their
  /// value) fail, and the caller exits 2 with the usage line.
  static bool parse(int argc, char** argv, Args& a) {
    int i = 1;
    if (i < argc && argv[i][0] != '-') a.cmd = argv[i++];
    static const char* kCmds[] = {"latency",    "forkjoin", "barrier",
                                  "message",    "chaos",    "chaos-disk",
                                  "check",      "survive",  "run",
                                  "map"};
    if (std::find_if(std::begin(kCmds), std::end(kCmds), [&](const char* c) {
          return a.cmd == c;
        }) == std::end(kCmds)) {
      std::fprintf(stderr, "sppsim-explore: unknown command '%s'\n",
                   a.cmd.c_str());
      return false;
    }
    for (; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "sppsim-explore: %s needs a value\n",
                       flag.c_str());
          return nullptr;
        }
        return argv[++i];
      };
      const char* v = nullptr;
      if (flag == "--nodes") {
        if (!(v = value())) return false;
        a.nodes = std::atoi(v);
      } else if (flag == "--threads") {
        if (!(v = value())) return false;
        a.threads = std::atoi(v);
      } else if (flag == "--bytes") {
        if (!(v = value())) return false;
        a.bytes = std::atoll(v);
      } else if (flag == "--l1-kb") {
        if (!(v = value())) return false;
        a.l1_kb = std::atoll(v);
      } else if (flag == "--rounds") {
        if (!(v = value())) return false;
        a.rounds = std::atoi(v);
      } else if (flag == "--shards") {
        if (!(v = value())) return false;
        a.shards = std::atoi(v);
        if (a.shards < 1) {
          std::fprintf(stderr, "sppsim-explore: --shards needs N >= 1\n");
          return false;
        }
      } else if (flag == "--fault-plan") {
        if (!(v = value())) return false;
        a.fault_plan = v;
      } else if (flag == "--app") {
        if (!(v = value())) return false;
        a.app = v;
      } else if (flag == "--steps") {
        if (!(v = value())) return false;
        a.steps = std::atoi(v);
      } else if (flag == "--ckpt-dir") {
        if (!(v = value())) return false;
        a.ckpt_dir = v;
      } else if (flag == "--ckpt-interval") {
        if (!(v = value())) return false;
        a.ckpt_interval = std::atoll(v);
      } else if (flag == "--ckpt-wall-interval") {
        if (!(v = value())) return false;
        a.ckpt_wall = std::atof(v);
      } else if (flag == "--resume") {
        a.resume = true;
      } else if (flag == "--watchdog") {
        if (!(v = value())) return false;
        a.watchdog = std::atof(v);
      } else if (flag == "--kill-after-writes") {
        if (!(v = value())) return false;
        a.kill_after_writes = std::atoi(v);
      } else {
        std::fprintf(stderr, "sppsim-explore: unknown option '%s'\n",
                     flag.c_str());
        return false;
      }
    }
    static const char* kApps[] = {"nbody", "fem",       "pic",
                                  "ppm",   "nbody-pvm", "pic-pvm"};
    if (a.cmd == "run" &&
        std::find_if(std::begin(kApps), std::end(kApps), [&](const char* c) {
          return a.app == c;
        }) == std::end(kApps)) {
      std::fprintf(stderr, "sppsim-explore: unknown app '%s'\n", a.app.c_str());
      return false;
    }
    if (a.nodes < 1) a.nodes = 1;
    if (a.nodes > 16) a.nodes = 16;
    if (a.rounds < 1) a.rounds = 1;
    if (a.ckpt_interval < 1) a.ckpt_interval = 1;
    return true;
  }
};

arch::CostModel cost_for(const Args& a) {
  arch::CostModel cm;
  cm.l1_bytes = a.l1_kb << 10;
  return cm;
}

/// Loads --fault-plan and attaches it to `runtime`; null when flag absent.
std::unique_ptr<fault::FaultInjector> injector_for(const Args& a,
                                                   rt::Runtime& runtime) {
  if (a.fault_plan.empty()) return nullptr;
  auto inj = std::make_unique<fault::FaultInjector>(
      fault::FaultPlan::from_file(a.fault_plan));
  inj->attach(runtime);
  return inj;
}

int cmd_latency(const Args& a) {
  arch::Machine m(arch::Topology{.nodes = a.nodes}, cost_for(a));
  std::printf("machine: %u hypernodes, %u CPUs, L1 %llu KB\n\n", a.nodes,
              m.topo().num_cpus(),
              static_cast<unsigned long long>(a.l1_kb));
  const auto probe = [&](const char* what, unsigned home,
                         sim::Time at) -> void {
    const arch::VAddr va = m.vm().allocate(
        64 * arch::kLineBytes, arch::MemClass::kNearShared, "probe", home);
    sim::Time t = at;
    double sum = 0;
    for (unsigned k = 0; k < 64; ++k) {
      const sim::Time t2 = m.access(0, va + k * arch::kLineBytes, false, t);
      sum += static_cast<double>(sim::to_cycles(t2 - t));
      t = t2;
    }
    std::printf("  %-28s %7.1f cycles\n", what, sum / 64);
  };
  {
    const arch::VAddr va = m.vm().allocate(
        arch::kLineBytes, arch::MemClass::kNearShared, "hit", 0);
    sim::Time t = m.access(0, va, false, 0);
    const sim::Time t2 = m.access(0, va, false, t);
    std::printf("  %-28s %7.1f cycles\n", "cache hit",
                static_cast<double>(sim::to_cycles(t2 - t)));
  }
  probe("hypernode-local miss", 0, 1000000);
  if (a.nodes > 1) probe("remote-hypernode miss", 1, 50000000);
  return 0;
}

int cmd_forkjoin(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  const auto inj = injector_for(a, runtime);
  runtime.run([&] {
    const sim::Time t0 = runtime.now();
    runtime.parallel(a.threads, rt::Placement::kUniform,
                     [](unsigned, unsigned) {});
    std::printf("fork-join of %u threads (uniform): %.1f us\n", a.threads,
                sim::to_usec(runtime.now() - t0));
  });
  return 0;
}

int cmd_barrier(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  const auto inj = injector_for(a, runtime);
  runtime.run([&] {
    rt::Barrier barrier(runtime, a.threads);
    sim::Time t0 = 0;
    runtime.parallel(a.threads, rt::Placement::kUniform,
                     [&](unsigned tid, unsigned) {
                       barrier.wait();  // warm/align
                       if (tid == 0) t0 = runtime.now();
                       barrier.wait();
                       if (tid == 0) {
                         std::printf("barrier of %u threads: %.2f us "
                                     "(thread 0 view)\n",
                                     a.threads,
                                     sim::to_usec(runtime.now() - t0));
                       }
                     });
  });
  return 0;
}

int cmd_message(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  const auto inj = injector_for(a, runtime);
  runtime.run([&] {
    pvm::Pvm root(runtime);
    root.spawn(2, rt::Placement::kUniform, [&](pvm::Pvm& vm, int me, int) {
      std::vector<double> buf(a.bytes / 8 + 1, 1.0);
      if (me == 0) {
        pvm::Message m;
        m.pack(buf.data(), buf.size());
        const sim::Time t0 = runtime.now();
        vm.send(1, 1, std::move(m));
        vm.recv(1, 2);
        std::printf("PVM round trip, %zu bytes, %s: %.1f us\n", a.bytes,
                    a.nodes > 1 ? "cross-node" : "local",
                    sim::to_usec(runtime.now() - t0));
      } else {
        pvm::Message m = vm.recv(0, 1);
        m.tag = 2;
        vm.send(0, 2, std::move(m));
      }
    });
  });
  return 0;
}

int cmd_chaos(const Args& a) {
  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  fault::FaultPlan plan;
  if (a.fault_plan.empty()) {
    // Built-in demo plan: 1% loss from the start, one dead ring link and a
    // degraded one partway in, and a CPU fail-stop if we have spares.
    plan.pvm_loss(0, 0.01, 0.005, 0.005, 20000);
    plan.link_down(1000000, 0, 0);
    plan.link_degrade(1000000, 1, 0, 4);
    if (runtime.topo().num_cpus() > 2) plan.cpu_fail(2000000, 1);
  } else {
    plan = fault::FaultPlan::from_file(a.fault_plan);
  }
  fault::FaultInjector inj(plan);
  inj.attach(runtime);
  check::Checker checker(runtime);

  // Every payload word is round-trip verified: a lossy/duplicating fabric
  // must still deliver each message exactly once and bit-intact.
  std::uint64_t corrupt = 0;
  runtime.run([&] {
    pvm::Pvm root(runtime);
    root.spawn(2, rt::Placement::kUniform, [&](pvm::Pvm& vm, int me, int) {
      const std::size_t words = a.bytes / 8 + 1;
      for (unsigned r = 0; r < a.rounds; ++r) {
        const double fill = 1.0 + static_cast<double>(r);
        if (me == 0) {
          std::vector<double> buf(words, fill);
          pvm::Message m;
          m.pack(buf.data(), buf.size());
          vm.send(1, 1, std::move(m));
          pvm::Message back = vm.recv(1, 2);
          std::vector<double> echo(words, 0.0);
          back.unpack(echo.data(), echo.size());
          for (const double v : echo) {
            if (v != fill) ++corrupt;
          }
        } else {
          pvm::Message m = vm.recv(0, 1);
          std::vector<double> got(words, 0.0);
          m.unpack(got.data(), got.size());
          for (const double v : got) {
            if (v != fill) ++corrupt;
          }
          pvm::Message reply;
          reply.pack(got.data(), got.size());
          vm.send(0, 2, std::move(reply));
        }
      }
    });
    std::printf("chaos: %u ping-pong rounds of %zu bytes survived "
                "(%.2f ms simulated)\n\n",
                a.rounds, a.bytes, sim::to_seconds(runtime.now()) * 1e3);
    prof::Profiler prof(runtime, 2);
    prof.fault_report();
  });
  if (corrupt != 0) {
    std::printf("chaos: %llu corrupted payload word(s)\n",
                static_cast<unsigned long long>(corrupt));
  }
  if (!checker.clean()) checker.report(stdout);
  return (corrupt == 0 && checker.clean()) ? 0 : 1;
}

/// Kills a CPU mid-run in every application with checkpointing enabled and
/// verifies each recovers to the fault-free answer: bit-exact for the
/// shared-memory apps (migrate-and-restore replay), small tolerance for the
/// PVM apps (shrink + rollback changes the reduction order).  Exits nonzero
/// on divergence, a missing recovery, or any oracle firing.
int cmd_survive(const Args& a) {
  unsigned failures = 0;
  std::printf("survivable-run sweep: %u hypernode(s), %u threads, "
              "one mid-run CPU fail-stop per app\n\n", a.nodes, a.threads);

  const auto close = [](double got, double want, double tol) {
    return std::fabs(got - want) <= tol * std::max(1.0, std::fabs(want));
  };

  const auto scenario = [&](const char* name, double tol, auto&& run_app) {
    // Fault-free baseline, checkpointing off: the ground-truth answer.
    std::vector<double> base;
    sim::Time elapsed = 0;
    {
      rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
      runtime.run([&] {
        base = run_app(runtime, 0u);
        elapsed = runtime.now();
      });
    }

    // Faulted run: checkpoint every 2 steps, fail-stop one victim CPU at
    // ~45% of the baseline's elapsed time, full checking attached.
    rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
    const unsigned victim =
        runtime.place_cpu(a.threads / 2, a.threads, rt::Placement::kUniform);
    fault::FaultPlan plan;
    plan.cpu_fail(std::max<sim::Time>(1, elapsed * 45 / 100), victim);
    fault::FaultInjector inj(plan);
    inj.attach(runtime);
    check::Checker checker(runtime);
    std::vector<double> got;
    runtime.run([&] { got = run_app(runtime, 2u); });

    const auto& tot = runtime.machine().perf();
    std::string why;
    if (!checker.clean()) why += " oracle";
    if (tot.checkpoints_taken == 0) why += " no-checkpoint";
    if (tot.rollbacks == 0) why += " no-rollback";
    if (got.size() != base.size()) {
      why += " shape";
    } else {
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (!close(got[i], base[i], tol)) {
          why += " diverged";
          break;
        }
      }
    }
    std::printf("  %-12s cpu %2u down  %3llu ckpts %2llu rollbacks "
                "%2llu task-deaths %2llu migrations  %s%s\n",
                name, victim,
                static_cast<unsigned long long>(tot.checkpoints_taken),
                static_cast<unsigned long long>(tot.rollbacks),
                static_cast<unsigned long long>(tot.tasks_failed),
                static_cast<unsigned long long>(tot.cpu_recoveries),
                why.empty() ? "recovered" : "FAILED:", why.c_str());
    if (!why.empty()) {
      if (!checker.clean()) checker.report(stdout);
      ++failures;
    }
  };

  scenario("femgas", 0.0, [&](rt::Runtime& rt, unsigned k) {
    fem::FemConfig cfg;
    cfg.nx = 24;
    cfg.ny = 12;
    cfg.steps = 6;
    cfg.ckpt_interval = k;
    fem::FemGas app(rt, cfg, a.threads, rt::Placement::kUniform);
    app.init_blast(2.0, 3.0);
    const auto r = app.run();
    return std::vector<double>{r.final.total_mass, r.final.total_mom_x,
                               r.final.total_mom_y, r.final.total_energy,
                               r.final.min_density, r.final.min_pressure};
  });
  scenario("ppm", 0.0, [&](rt::Runtime& rt, unsigned k) {
    ppm::PpmConfig cfg;
    cfg.nx = 24;
    cfg.ny = 48;
    cfg.tiles_x = 2;
    cfg.tiles_y = 4;
    cfg.steps = 4;
    cfg.ckpt_interval = k;
    ppm::PpmTiled app(rt, cfg, a.threads, rt::Placement::kUniform);
    app.init_sod_x();
    const auto r = app.run();
    return std::vector<double>{r.final.mass, r.final.mom_x, r.final.mom_y,
                               r.final.energy, r.final.min_rho,
                               r.final.min_p};
  });
  scenario("pic", 0.0, [&](rt::Runtime& rt, unsigned k) {
    pic::PicConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.steps = 6;
    cfg.ckpt_interval = k;
    pic::PicShared app(rt, cfg, a.threads, rt::Placement::kUniform);
    const auto r = app.run();
    std::vector<double> d{r.final.kinetic_energy, r.final.field_energy,
                          r.final.total_charge, r.final.momentum_z};
    d.insert(d.end(), r.field_energy_history.begin(),
             r.field_energy_history.end());
    return d;
  });
  scenario("nbody", 0.0, [&](rt::Runtime& rt, unsigned k) {
    nbody::NbodyConfig cfg;
    cfg.n = 256;
    cfg.steps = 4;
    cfg.ckpt_interval = k;
    nbody::NbodyShared app(rt, cfg, a.threads, rt::Placement::kUniform);
    app.load_plummer();
    const auto r = app.run();
    return std::vector<double>{r.final.kinetic, r.final.px, r.final.py,
                               r.final.pz};
  });
  // PVM variants: ULFM-style shrink + rollback.  The survivors redo the
  // combines with one fewer rank, so reductions associate differently.
  scenario("pic-pvm", 1e-6, [&](rt::Runtime& rt, unsigned k) {
    pic::PicConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.steps = 6;
    cfg.ckpt_interval = k;
    pic::PicPvm app(rt, cfg, a.threads, rt::Placement::kUniform);
    const auto r = app.run();
    std::vector<double> d{r.final.kinetic_energy, r.final.field_energy,
                          r.final.total_charge, r.final.momentum_z};
    d.insert(d.end(), r.field_energy_history.begin(),
             r.field_energy_history.end());
    return d;
  });
  scenario("nbody-pvm", 1e-9, [&](rt::Runtime& rt, unsigned k) {
    nbody::NbodyConfig cfg;
    cfg.n = 256;
    cfg.steps = 4;
    cfg.ckpt_interval = k;
    nbody::NbodyPvm app(rt, cfg, a.threads, rt::Placement::kUniform);
    const auto r = app.run();
    return std::vector<double>{r.final.kinetic, r.final.px, r.final.py,
                               r.final.pz};
  });

  // --- host-kill sweep: SIGKILL the whole process mid-run, then --resume ---
  // The durable-checkpoint layer (spp::ckpt::Disk, docs/RECOVERY.md): a
  // forked child runs the app durably and the session SIGKILLs it after the
  // second disk commit -- a genuine host kill, no unwinding, no flush.  A
  // fresh run with --resume must reach the uninterrupted run's exact digest.
  std::printf("\nhost-kill sweep: durable run, SIGKILL after 2 epoch "
              "commits, then --resume\n\n");

  const auto host_kill = [&](const char* name, auto&& durable_run) {
    char tmpl[] = "/tmp/sppsim-survive-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::printf("  %-12s FAILED: mkdtemp\n", name);
      ++failures;
      return;
    }
    const std::string base = tmpl;

    const auto digest_of = [&](const std::string& dir, bool resume,
                               unsigned kill_after) -> std::uint64_t {
      rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
      ckpt::DurableSpec spec;
      spec.dir = dir;
      spec.interval = 2;
      spec.resume = resume;
      spec.test_kill_after_writes = kill_after;
      runtime.run([&] { durable_run(runtime, spec); });
      return runtime.machine().perf().digest(runtime.elapsed());
    };

    const std::uint64_t want = digest_of(base + "/base", false, 0);

    const pid_t pid = fork();
    if (pid == 0) {
      digest_of(base + "/kill", false, 2);
      _exit(0);  // unreachable: the kill fires at the second commit.
    }
    int wstatus = 0;
    std::string why;
    if (pid < 0 || waitpid(pid, &wstatus, 0) != pid) {
      why += " fork/wait";
    } else if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
      why += " child-not-SIGKILLed";
    }
    std::uint64_t got = 0;
    try {
      got = digest_of(base + "/kill", true, 0);
    } catch (const std::exception& e) {
      why += std::string(" resume-failed(") + e.what() + ")";
    }
    if (why.empty() && got != want) why += " digest-diverged";
    std::printf("  %-12s resume digest %016llx  %s%s\n", name,
                static_cast<unsigned long long>(got),
                why.empty() ? "recovered" : "FAILED:", why.c_str());
    if (!why.empty()) ++failures;
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
  };

  host_kill("nbody", [&](rt::Runtime& rt, const ckpt::DurableSpec& spec) {
    nbody::NbodyConfig cfg;
    cfg.n = 256;
    cfg.steps = 4;
    nbody::NbodyShared app(rt, cfg, a.threads, rt::Placement::kUniform);
    app.load_plummer();
    (void)app.run_durable(spec);
  });
  host_kill("nbody-pvm", [&](rt::Runtime& rt, const ckpt::DurableSpec& spec) {
    nbody::NbodyConfig cfg;
    cfg.n = 256;
    cfg.steps = 4;
    nbody::NbodyPvm app(rt, cfg, a.threads, rt::Placement::kUniform);
    (void)app.run_durable(spec);
  });

  if (failures != 0) {
    std::printf("\nsurvive: %u scenario(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nsurvive: all scenarios recovered to the fault-free "
              "answer\n");
  return 0;
}

/// Host-filesystem chaos sweep (docs/RECOVERY.md, "Host I/O faults & the
/// degradation ladder"): one scenario per injected fault class.  Each forks
/// a durable nbody run with an io::FaultPlan armed; the child either
/// SIGKILLs itself mid-run (test_kill_after_writes) or completes degraded
/// and exits rt::kExitIoDegraded.  The parent then resumes fault-free (for
/// bit rot, with a read-side plan armed around the load) and requires the
/// uninterrupted run's exact digest -- proving the commit protocol is
/// all-or-nothing under every fault class and resume never loads a corrupt
/// epoch.
int cmd_chaos_disk(const Args& a) {
  unsigned failures = 0;
  std::printf("disk-chaos sweep: durable nbody runs under injected host-I/O "
              "faults, then fault-free --resume\n\n");

  struct RunResult {
    std::uint64_t digest = 0;
    bool degraded = false;          ///< cmd_run's exit-4 condition.
    std::uint64_t epochs_skipped = 0;
  };

  // One durable nbody run: 256 bodies, 4 steps, one epoch per step.
  const auto run_once = [&](const std::string& dir, bool resume,
                            unsigned kill_after,
                            const ckpt::RecoveryPolicy& policy) -> RunResult {
    rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
    ckpt::DurableSpec spec;
    spec.dir = dir;
    spec.interval = 1;
    spec.resume = resume;
    spec.test_kill_after_writes = kill_after;
    spec.policy = policy;
    runtime.run([&] {
      nbody::NbodyConfig cfg;
      cfg.n = 256;
      cfg.steps = 4;
      nbody::NbodyShared app(runtime, cfg, a.threads, rt::Placement::kUniform);
      app.load_plummer();
      (void)app.run_durable(spec);
    });
    const arch::PerfCounters& p = runtime.machine().perf();
    return RunResult{p.digest(runtime.elapsed()),
                     p.io_commit_failures > 0 || p.io_memory_only_epochs > 0,
                     p.io_epochs_skipped};
  };

  // Fault-plan operation numbering for this run shape (src/spp/ckpt/disk.cc):
  // the LOCK is open#1/write#1; commit k is then open/write #2k and #2k+1
  // and fsync/rename/dir-fsync #2k-1 and #2k (epoch file first, MANIFEST
  // second).  A resume over a SIGKILLed child's stale LOCK reads the LOCK
  // pid as read#1 and the newest epoch file as read#2.
  struct Scenario {
    const char* name;
    void (*arm)(io::FaultPlan&);   ///< child-side plan (nullptr = clean).
    unsigned kill_after;           ///< SIGKILL the child after N commits.
    bool expect_degraded;          ///< child exits 4 instead of being killed.
    ckpt::RecoveryPolicy policy;   ///< child-side recovery policy.
    bool rot_resume;               ///< arm read-side bit rot on the resume.
    bool expect_skip;              ///< resume must skip >= 1 corrupt epoch.
  };
  const ckpt::RecoveryPolicy relaxed;  // the defaults: retries + 3 rungs
  ckpt::RecoveryPolicy no_mercy;       // first abandonment goes memory-only
  no_mercy.max_retries = 0;
  no_mercy.max_degradations = 0;

  const Scenario scenarios[] = {
      // Transient EIO on epoch-1's payload write: one retry, then the run
      // survives unharmed to the SIGKILL.
      {"eio-write",
       [](io::FaultPlan& p) { p.fail_nth(io::Op::kWrite, 4, EIO); },
       3, false, relaxed, false, false},
      // Half of epoch-1's payload reaches the temp file, then the device
      // "fails"; the retry truncates and rewrites it.
      {"short-write", [](io::FaultPlan& p) { p.short_write_nth(4); },
       3, false, relaxed, false, false},
      // fsync of epoch-2's payload fails once: data that never reached
      // media must not be renamed into place.
      {"fsync-fail",
       [](io::FaultPlan& p) { p.fail_nth(io::Op::kFsync, 5, EIO); },
       3, false, relaxed, false, false},
      // The disk fills for good after epoch 1: every later commit is
      // abandoned, the ladder widens the stride, the run completes
      // degraded (exit 4) and resumes from the last durable epoch.
      {"enospc",
       [](io::FaultPlan& p) { p.fail_from(io::Op::kOpen, 6, ENOSPC); },
       0, true, relaxed, false, false},
      // Epoch-2's rename is torn: a corrupt corpse lands under the final
      // name.  Zero-tolerance policy sends the child memory-only (exit 4);
      // the resume must detect the corpse by CRC and fall back past it.
      {"torn-rename", [](io::FaultPlan& p) { p.torn_rename_nth(5); },
       0, true, no_mercy, false, true},
      // The child is killed clean; the parent's resume reads the newest
      // epoch through rotting media (one flipped bit) and must fall back
      // to the older epoch rather than trust it.
      {"bit-rot", nullptr, 2, false, relaxed, true, true},
  };

  for (const Scenario& sc : scenarios) {
    char tmpl[] = "/tmp/sppsim-chaosdisk-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::printf("  %-12s FAILED: mkdtemp\n", sc.name);
      ++failures;
      continue;
    }
    const std::string base = tmpl;
    const std::uint64_t want =
        run_once(base + "/base", false, 0, relaxed).digest;

    const pid_t pid = fork();
    if (pid == 0) {
      io::FaultPlan plan;
      if (sc.arm != nullptr) {
        sc.arm(plan);
        io::arm_faults(&plan);
      }
      const RunResult r =
          run_once(base + "/kill", false, sc.kill_after, sc.policy);
      io::arm_faults(nullptr);
      _exit(r.degraded ? rt::kExitIoDegraded : rt::kExitOk);
    }
    int wstatus = 0;
    std::string why;
    if (pid < 0 || waitpid(pid, &wstatus, 0) != pid) {
      why += " fork/wait";
    } else if (sc.expect_degraded) {
      if (!WIFEXITED(wstatus) ||
          WEXITSTATUS(wstatus) != rt::kExitIoDegraded) {
        why += " child-not-exit-4";
      }
    } else if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
      why += " child-not-SIGKILLed";
    }

    RunResult got;
    io::FaultPlan rot;
    try {
      if (sc.rot_resume) {
        rot.bitrot_read_nth(2);  // read#1 is the stale LOCK's pid.
        io::arm_faults(&rot);
      }
      got = run_once(base + "/kill", true, 0, relaxed);
      io::arm_faults(nullptr);
    } catch (const std::exception& e) {
      io::arm_faults(nullptr);
      why += std::string(" resume-failed(") + e.what() + ")";
    }
    if (why.empty()) {
      if (got.digest != want) why += " digest-diverged";
      if (got.degraded) why += " resume-degraded";
      if (sc.expect_skip && got.epochs_skipped == 0) {
        why += " corrupt-epoch-not-skipped";
      }
    }
    std::printf("  %-12s resume digest %016llx  skipped %llu  %s%s\n",
                sc.name, static_cast<unsigned long long>(got.digest),
                static_cast<unsigned long long>(got.epochs_skipped),
                why.empty() ? "recovered" : "FAILED:", why.c_str());
    if (!why.empty()) ++failures;
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
  }

  if (failures != 0) {
    std::printf("\nchaos-disk: %u scenario(s) FAILED\n", failures);
    return rt::kExitFailure;
  }
  std::printf("\nchaos-disk: every fault class resumed to the fault-free "
              "digest; no corrupt epoch was ever loaded\n");
  return rt::kExitOk;
}

/// Runs every microbenchmark shape and all four applications at small
/// configurations under full checking (coherence oracle + race detector +
/// wait-for deadlock analysis); exits nonzero if any scenario is not clean.
int cmd_check(const Args& a) {
  unsigned failures = 0;
  std::printf("full-checking sweep: %u hypernode(s), %u threads\n\n", a.nodes,
              a.threads);

  const auto scenario = [&](const char* name, auto&& body) {
    rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
    check::Checker checker(runtime);
    runtime.run([&] { body(runtime); });
    std::printf("  %-20s %10llu events %6llu violations %4llu races  %s\n",
                name,
                static_cast<unsigned long long>(checker.oracle().events()),
                static_cast<unsigned long long>(checker.oracle().violations()),
                static_cast<unsigned long long>(checker.races().races()),
                checker.clean() ? "clean" : "NOT CLEAN");
    if (!checker.clean()) {
      checker.report(stdout);
      ++failures;
    }
  };

  // --- microbenchmarks: one per synchronization shape -----------------------
  scenario("forkjoin", [&](rt::Runtime& rt) {
    const arch::VAddr va = rt.alloc(a.threads * 64, arch::MemClass::kFarShared,
                                    "check.slots");
    rt.parallel(a.threads, rt::Placement::kUniform, [&](unsigned i, unsigned) {
      rt.write(va + i * 64, 8);  // disjoint slots: fork/join edges only.
    });
    rt.read(va, 8);
  });
  scenario("barrier", [&](rt::Runtime& rt) {
    const arch::VAddr va = rt.alloc(a.threads * 64, arch::MemClass::kFarShared,
                                    "check.ring");
    rt::Barrier barrier(rt, a.threads);
    rt.parallel(a.threads, rt::Placement::kUniform,
                [&](unsigned i, unsigned n) {
                  rt.write(va + i * 64, 8);
                  barrier.wait();
                  rt.read(va + ((i + 1) % n) * 64, 8);  // neighbor's slot.
                });
  });
  scenario("lock", [&](rt::Runtime& rt) {
    const arch::VAddr va =
        rt.alloc(arch::kLineBytes, arch::MemClass::kNearShared, "check.ctr");
    rt::Lock lock(rt);
    rt.parallel(a.threads, rt::Placement::kUniform, [&](unsigned, unsigned) {
      rt::CriticalSection cs(lock);
      rt.read(va, 8);
      rt.write(va, 8);
    });
  });
  scenario("message", [&](rt::Runtime& rt) {
    pvm::Pvm root(rt);
    root.spawn(2, rt::Placement::kUniform, [&](pvm::Pvm& vm, int me, int) {
      std::vector<double> buf(64, 1.0);
      if (me == 0) {
        pvm::Message m;
        m.pack(buf.data(), buf.size());
        vm.send(1, 1, std::move(m));
        vm.recv(1, 2);
      } else {
        pvm::Message m = vm.recv(0, 1);
        m.tag = 2;
        vm.send(0, 2, std::move(m));
      }
    });
  });

  // --- the four applications at small configurations ------------------------
  scenario("nbody", [&](rt::Runtime& rt) {
    nbody::NbodyConfig cfg;
    cfg.n = 256;
    cfg.steps = 1;
    nbody::NbodyShared nb(rt, cfg, a.threads, rt::Placement::kUniform);
    (void)nb.run();
  });
  scenario("femgas", [&](rt::Runtime& rt) {
    fem::FemConfig cfg;
    cfg.nx = 16;
    cfg.ny = 8;
    cfg.steps = 2;
    fem::FemGas femgas(rt, cfg, a.threads, rt::Placement::kUniform);
    femgas.init_uniform(1.0, 0.3, -0.1, 1.0);
    (void)femgas.run();
  });
  scenario("pic", [&](rt::Runtime& rt) {
    pic::PicConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.steps = 2;
    pic::PicShared pic(rt, cfg, a.threads, rt::Placement::kUniform);
    (void)pic.run();
  });
  scenario("ppm", [&](rt::Runtime& rt) {
    ppm::PpmConfig cfg;
    cfg.nx = 24;
    cfg.ny = 48;
    cfg.tiles_x = 2;
    cfg.tiles_y = 4;
    cfg.steps = 2;
    ppm::PpmTiled ppm(rt, cfg, a.threads, rt::Placement::kUniform);
    ppm.init_sod_x();
    (void)ppm.run();
  });

  if (failures != 0) {
    std::printf("\ncheck: %u scenario(s) NOT clean\n", failures);
    return 1;
  }
  std::printf("\ncheck: all scenarios clean\n");
  return 0;
}

/// Runs one application end to end and prints its PerfCounters digest.  With
/// --ckpt-dir the run is durable (epoch commits to disk, graceful SIGINT/
/// SIGTERM shutdown, bit-exact --resume); without it the app's plain run()
/// path executes, which charges nothing extra (zero-cost discipline).
int cmd_run(const Args& a) {
  if (a.ckpt_dir.empty() &&
      (a.resume || a.kill_after_writes != 0 || a.ckpt_wall > 0)) {
    std::fprintf(stderr,
                 "sppsim-explore: --resume/--kill-after-writes/"
                 "--ckpt-wall-interval need --ckpt-dir\n");
    return rt::kExitUsage;
  }
  ckpt::install_shutdown_handlers();
  ckpt::DurableSpec spec;
  spec.dir = a.ckpt_dir;
  spec.interval = a.ckpt_interval;
  spec.wall_interval = a.ckpt_wall;
  spec.resume = a.resume;
  spec.test_kill_after_writes = a.kill_after_writes;

  rt::Runtime runtime(arch::Topology{.nodes = a.nodes}, cost_for(a));
  const auto inj = injector_for(a, runtime);
  std::unique_ptr<rt::Watchdog> dog;
  if (a.watchdog > 0) {
    dog = std::make_unique<rt::Watchdog>(runtime.conductor(), a.watchdog);
  }

  const unsigned T = a.threads;
  const auto pl = rt::Placement::kUniform;
  runtime.run([&] {
    if (a.app == "nbody") {
      nbody::NbodyConfig cfg;
      cfg.n = 256;
      cfg.steps = a.steps ? a.steps : 4;
      nbody::NbodyShared app(runtime, cfg, T, pl);
      app.load_plummer();
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("nbody: %zu bodies, %u steps, %.1f MFLOPS\n", cfg.n,
                  cfg.steps, r.mflops);
    } else if (a.app == "fem") {
      fem::FemConfig cfg;
      cfg.nx = 24;
      cfg.ny = 12;
      cfg.steps = a.steps ? a.steps : 6;
      fem::FemGas app(runtime, cfg, T, pl);
      app.init_blast(2.0, 3.0);
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("fem: %ux%u blast, %u steps, %.1f MFLOPS\n", cfg.nx, cfg.ny,
                  cfg.steps, r.mflops);
    } else if (a.app == "pic") {
      pic::PicConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 8;
      cfg.steps = a.steps ? a.steps : 6;
      pic::PicShared app(runtime, cfg, T, pl);
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("pic: %zu^3 mesh, %u steps, %.1f MFLOPS\n", cfg.nx,
                  cfg.steps, r.mflops);
    } else if (a.app == "ppm") {
      ppm::PpmConfig cfg;
      cfg.nx = 24;
      cfg.ny = 48;
      cfg.tiles_x = 2;
      cfg.tiles_y = 4;
      cfg.steps = a.steps ? a.steps : 4;
      ppm::PpmTiled app(runtime, cfg, T, pl);
      app.init_sod_x();
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("ppm: %zux%zu sod, %u steps, %.1f MFLOPS\n", cfg.nx, cfg.ny,
                  cfg.steps, r.mflops);
    } else if (a.app == "nbody-pvm") {
      nbody::NbodyConfig cfg;
      cfg.n = 256;
      cfg.steps = a.steps ? a.steps : 4;
      nbody::NbodyPvm app(runtime, cfg, T, pl);
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("nbody-pvm: %zu bodies, %u steps, %.1f MFLOPS\n", cfg.n,
                  cfg.steps, r.mflops);
    } else {  // pic-pvm (names validated at parse time)
      pic::PicConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 8;
      cfg.steps = a.steps ? a.steps : 6;
      pic::PicPvm app(runtime, cfg, T, pl);
      const auto r = spec.enabled() ? app.run_durable(spec) : app.run();
      std::printf("pic-pvm: %zu^3 mesh, %u steps, %.1f MFLOPS\n", cfg.nx,
                  cfg.steps, r.mflops);
    }
  });
  dog.reset();

  if (ckpt::shutdown_requested()) {
    std::printf("run: shutdown requested; stopped at an epoch boundary with "
                "the checkpoint on disk (continue with --resume)\n");
  }
  std::printf("digest: %016llx\n",
              static_cast<unsigned long long>(
                  runtime.machine().perf().digest(runtime.elapsed())));

  // Exit-code contract (spp/rt/exit_codes.h): the run itself succeeded --
  // the digest above is authoritative -- but if the durable layer abandoned
  // any epoch commit the disk trail is thinner than promised, and callers
  // scripting around --resume must know.
  const arch::PerfCounters& p = runtime.machine().perf();
  if (p.io_commit_failures > 0 || p.io_memory_only_epochs > 0) {
    prof::Profiler prof(runtime, a.threads);
    prof.io_report();
    return rt::kExitIoDegraded;
  }
  return rt::kExitOk;
}

int cmd_map(const Args& a) {
  arch::Machine m(arch::Topology{.nodes = a.nodes}, cost_for(a));
  std::printf("SPP-1000, %u hypernode(s):\n", a.nodes);
  std::printf("  %u functional units (2 CPUs each), %u CPUs total\n",
              m.topo().num_fus(), m.topo().num_cpus());
  std::printf("  4 SCI rings; FU k of every node on ring k\n");
  std::printf("  L1: %llu KB direct-mapped, %llu-byte lines\n",
              static_cast<unsigned long long>(m.cost().l1_bytes >> 10),
              static_cast<unsigned long long>(arch::kLineBytes));
  std::printf("  gcache: %llu KB per (node, ring)\n",
              static_cast<unsigned long long>(m.cost().gcache_bytes >> 10));
  std::printf("  memory classes: thread_private node_private near_shared "
              "far_shared block_shared\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!Args::parse(argc, argv, a)) {
    std::fputs(kUsage, stderr);
    return spp::rt::kExitUsage;
  }
  if (a.shards != 0) {
    // Every subcommand builds its Runtimes through the conductor's
    // environment knobs, so one setenv covers them all (single-threaded
    // here, before any Runtime exists).  --shards implies the pdes engine
    // unless the caller pinned a backend explicitly.
    const std::string n = std::to_string(a.shards);
    ::setenv("SPP_SHARDS", n.c_str(), /*overwrite=*/1);
    ::setenv("SPP_CONDUCTOR", "pdes", /*overwrite=*/0);
  }
  try {
    if (a.cmd == "latency") return cmd_latency(a);
    if (a.cmd == "forkjoin") return cmd_forkjoin(a);
    if (a.cmd == "barrier") return cmd_barrier(a);
    if (a.cmd == "message") return cmd_message(a);
    if (a.cmd == "chaos") return cmd_chaos(a);
    if (a.cmd == "chaos-disk") return cmd_chaos_disk(a);
    if (a.cmd == "check") return cmd_check(a);
    if (a.cmd == "survive") return cmd_survive(a);
    if (a.cmd == "run") return cmd_run(a);
    return cmd_map(a);  // "map": the command set is validated at parse time.
  } catch (const std::exception& e) {
    // ConfigError for malformed plans; ckpt::Error for a corrupt / locked /
    // missing checkpoint directory; io::IoError for an unrecoverable host
    // filesystem failure; TimeoutError / runtime_error when a plan makes
    // the machine unrecoverable (partitioned fabric, all CPUs dead, retries
    // exhausted).  Either way: report, don't abort.
    std::fprintf(stderr, "sppsim-explore: %s\n", e.what());
    return spp::rt::kExitFailure;
  }
}
