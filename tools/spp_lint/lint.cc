#include "lint.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace spplint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool contains(const std::set<std::string>& s, const std::string& k) {
  return s.count(k) != 0;
}

/// True when the finding at `line` carries a matching allow annotation on
/// the same line or the line directly above.
bool allowed(const SourceFile& f, const std::string& check, int line) {
  for (int l : {line, line - 1}) {
    auto it = f.allows.find(l);
    if (it != f.allows.end() && it->second.count(check) != 0) return true;
  }
  return false;
}

void emit(Result& res, const SourceFile& f, const std::string& check, int line,
          const std::string& message) {
  if (allowed(f, check, line)) return;
  res.findings.push_back({check, f.path, line, message});
}

/// Module name for the inventory: "src/spp/rt/..." -> "rt",
/// "tools/..." -> "tools", "tests/..." -> "tests".
std::string module_of(const std::string& path) {
  if (starts_with(path, "src/spp/")) {
    std::size_t end = path.find('/', 8);
    return end == std::string::npos ? "spp" : path.substr(8, end - 8);
  }
  std::size_t end = path.find('/');
  return end == std::string::npos ? path : path.substr(0, end);
}

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",   "switch",     "catch",   "return",
      "sizeof",   "alignof", "decltype", "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "new", "delete", "throw",
      "static_assert", "noexcept", "typeid", "alignas", "co_await",
      "co_yield", "co_return", "assert", "defined",
  };
  return kKeywords.count(s) != 0;
}

// ---------------------------------------------------------------------------
// sim-no-wallclock
// ---------------------------------------------------------------------------

/// Paths where wall-clock access is the *point*: the watchdog measures host
/// time by design, ckpt::Disk stamps manifests, and spp::io sleeps real
/// backoff delays between retries.  Everything else under src/ runs on
/// sim::Time only, so replay and digests stay bit-identical.
bool wallclock_exempt(const std::string& path) {
  return starts_with(path, "src/spp/rt/watchdog") ||
         starts_with(path, "src/spp/ckpt/disk") ||
         starts_with(path, "src/spp/io/");
}

void check_wallclock(const SourceFile& f, Result& res) {
  static const char kCheck[] = "sim-no-wallclock";
  if (!starts_with(f.path, "src/")) return;  // tools/ and tests/ are host code.
  if (wallclock_exempt(f.path)) return;

  // <cstdlib> also exports rand/srand but is pervasive (abort, getenv,
  // strtol), so the functions are flagged at use sites instead.
  static const std::set<std::string> kBadIncludes = {
      "chrono", "ctime", "time.h", "sys/time.h", "random"};
  for (const auto& [name, line] : f.includes) {
    if (contains(kBadIncludes, name)) {
      emit(res, f, kCheck, line,
           "#include <" + name +
               "> pulls a wall-clock/entropy source into simulated code; "
               "use sim::Time (or move the code under the rt::Watchdog / "
               "ckpt::Disk allowlist)");
    }
  }

  // Clock/entropy *types* -- any use is wrong regardless of qualification.
  static const std::set<std::string> kBadTypes = {
      "steady_clock", "system_clock", "high_resolution_clock",
      "random_device", "mt19937", "mt19937_64", "default_random_engine"};
  // Free functions -- flagged as calls, unqualified or std::-qualified, but
  // not as members (`msg.time(...)` is somebody's API, not <ctime>).
  static const std::set<std::string> kBadCalls = {
      "time",        "clock",         "rand",      "srand",
      "gettimeofday", "clock_gettime", "timespec_get", "localtime",
      "gmtime",      "mktime",        "nanosleep", "usleep", "sleep"};
  // this_thread::-qualified sleeps.
  static const std::set<std::string> kBadSleeps = {"sleep_for", "sleep_until"};

  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& id = t[i].text;
    const Token* prev = i > 0 ? &t[i - 1] : nullptr;
    const Token* prev2 = i > 1 ? &t[i - 2] : nullptr;
    const bool member = prev != nullptr && prev->kind == Token::Kind::kPunct &&
                        (prev->text == "." || prev->text == "->");
    const bool qualified = prev != nullptr &&
                           prev->kind == Token::Kind::kPunct &&
                           prev->text == "::";
    const std::string qualifier =
        (qualified && prev2 != nullptr && prev2->kind == Token::Kind::kIdent)
            ? prev2->text
            : "";

    if (contains(kBadTypes, id) && !member) {
      emit(res, f, kCheck, t[i].line,
           "'" + id + "' is a wall-clock/entropy source; simulated code must "
           "derive all time from sim::Time and all randomness from seeded "
           "spp state");
      continue;
    }
    const bool is_call = i + 1 < t.size() &&
                         t[i + 1].kind == Token::Kind::kPunct &&
                         t[i + 1].text == "(";
    if (!is_call || member) continue;
    // `sim::Time clock() const` declares a member named clock -- a preceding
    // identifier (the return type) marks a declaration, not a call.
    if (prev != nullptr && prev->kind == Token::Kind::kIdent) continue;
    if (qualified && qualifier != "std" && qualifier != "this_thread") continue;
    if (contains(kBadCalls, id)) {
      emit(res, f, kCheck, t[i].line,
           "call to '" + id + "' reads host wall-clock/entropy; simulated "
           "code must be a pure function of its seed and inputs");
    } else if (contains(kBadSleeps, id) && qualifier == "this_thread") {
      emit(res, f, kCheck, t[i].line,
           "'this_thread::" + id + "' blocks on host time inside simulated "
           "code; model delays with sim::Time instead");
    }
  }
}

// ---------------------------------------------------------------------------
// sim-no-host-thread
// ---------------------------------------------------------------------------

void check_host_thread(const SourceFile& f, Result& res) {
  static const char kCheck[] = "sim-no-host-thread";
  // Host concurrency lives in exactly three places: the conductor/fiber
  // layer (rt/), the PDES engine's lock-free event queues (pdes/), and
  // durable checkpointing (ckpt/).  Everywhere else, parallelism is
  // *simulated* -- SThreads multiplexed by the conductor -- and a real
  // std::thread would race the single-owner simulation state.
  if (!starts_with(f.path, "src/spp/")) return;
  if (starts_with(f.path, "src/spp/rt/") ||
      starts_with(f.path, "src/spp/pdes/") ||
      starts_with(f.path, "src/spp/ckpt/")) {
    return;
  }

  static const std::set<std::string> kBadIncludes = {
      "thread", "mutex", "shared_mutex", "condition_variable", "atomic",
      "future", "semaphore", "barrier", "latch", "stop_token", "pthread.h"};
  for (const auto& [name, line] : f.includes) {
    if (contains(kBadIncludes, name)) {
      emit(res, f, kCheck, line,
           "#include <" + name + "> brings host threading into simulated "
           "code; only src/spp/rt/ and src/spp/ckpt/ may touch host "
           "concurrency");
    }
  }

  static const std::set<std::string> kBadStd = {
      "thread",        "jthread",       "mutex",
      "recursive_mutex", "timed_mutex",  "shared_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",        "atomic_flag",   "atomic_ref",
      "future",        "promise",       "async",
      "lock_guard",    "unique_lock",   "scoped_lock",
      "shared_lock",   "counting_semaphore", "binary_semaphore",
      "barrier",       "latch",         "call_once",
      "once_flag",     "this_thread",   "stop_token"};
  static const std::set<std::string> kBadWrappers = {"HostMutex", "HostLock",
                                                     "HostCondVar"};
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& id = t[i].text;
    if (id == "thread_local") {
      emit(res, f, kCheck, t[i].line,
           "'thread_local' implies host threads; simulated per-thread state "
           "belongs on the SThread");
      continue;
    }
    if (starts_with(id, "pthread_")) {
      emit(res, f, kCheck, t[i].line,
           "'" + id + "' is a host threading primitive; only src/spp/rt/ "
           "and src/spp/ckpt/ may use host concurrency");
      continue;
    }
    if (contains(kBadWrappers, id)) {
      emit(res, f, kCheck, t[i].line,
           "'" + id + "' wraps a host mutex; simulated code synchronizes "
           "through rt::Conductor hand-offs, not host locks");
      continue;
    }
    const bool std_qualified =
        i >= 2 && t[i - 1].kind == Token::Kind::kPunct &&
        t[i - 1].text == "::" && t[i - 2].kind == Token::Kind::kIdent &&
        t[i - 2].text == "std";
    if (std_qualified && contains(kBadStd, id)) {
      emit(res, f, kCheck, t[i].line,
           "'std::" + id + "' is a host threading primitive; only "
           "src/spp/rt/ and src/spp/ckpt/ may use host concurrency");
    }
  }
}

// ---------------------------------------------------------------------------
// posix-file-io
// ---------------------------------------------------------------------------

void check_posix_io(const SourceFile& f, Result& res) {
  static const char kCheck[] = "posix-file-io";
  // The durable layer's fault story hangs on one funnel: every host file
  // operation in simulated code routes through the spp::io seam, where the
  // armed io::FaultPlan can see it and the recovery ladder can classify its
  // failure.  A raw open()/rename() anywhere else under src/ is invisible
  // to fault injection and untested against ENOSPC / torn renames / bit
  // rot (docs/RECOVERY.md, "Host I/O faults & the degradation ladder").
  if (!starts_with(f.path, "src/")) return;  // tools/ and tests/ are host code.
  if (starts_with(f.path, "src/spp/io/")) return;  // the seam itself.

  static const std::set<std::string> kBadIncludes = {
      "fcntl.h", "sys/stat.h", "sys/file.h", "dirent.h", "filesystem"};
  for (const auto& [name, line] : f.includes) {
    if (contains(kBadIncludes, name)) {
      emit(res, f, kCheck, line,
           "#include <" + name + "> reaches the host filesystem behind the "
           "spp::io seam; route file operations through io::File / io::Dir "
           "so fault injection and the recovery ladder can see them");
    }
  }

  // Flagged when unqualified, ::-global, or std::-qualified; a call through
  // any other qualifier (io::Dir::rename, fs::rename inside spp::io) is
  // somebody's wrapped API, not raw POSIX.
  static const std::set<std::string> kBadCalls = {
      "open",      "openat",  "creat",     "fopen",    "freopen",
      "fdopen",    "fread",   "fwrite",    "fclose",   "fsync",
      "fdatasync", "rename",  "renameat",  "unlink",   "unlinkat",
      "mkdir",     "rmdir",   "ftruncate", "truncate", "mkdtemp",
      "mkstemp",   "flock"};
  // Names too generic to flag bare (`rt.write(...)`, a local `read()`):
  // only the ::-global form is unambiguously the syscall.
  static const std::set<std::string> kGlobalOnly = {
      "read", "write", "close", "lseek", "pread", "pwrite"};

  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || is_keyword(t[i].text)) continue;
    const std::string& id = t[i].text;
    const bool is_call = i + 1 < t.size() &&
                         t[i + 1].kind == Token::Kind::kPunct &&
                         t[i + 1].text == "(";
    if (!is_call) continue;
    const Token* prev = i > 0 ? &t[i - 1] : nullptr;
    const Token* prev2 = i > 1 ? &t[i - 2] : nullptr;
    if (prev != nullptr && prev->kind == Token::Kind::kPunct &&
        (prev->text == "." || prev->text == "->")) {
      continue;  // member call: somebody's API, not POSIX.
    }
    if (prev != nullptr && prev->kind == Token::Kind::kIdent) {
      continue;  // declaration: `void close() noexcept`.
    }
    const bool qualified = prev != nullptr &&
                           prev->kind == Token::Kind::kPunct &&
                           prev->text == "::";
    const std::string qualifier =
        (qualified && prev2 != nullptr && prev2->kind == Token::Kind::kIdent)
            ? prev2->text
            : "";
    const bool global = qualified && qualifier.empty();
    if (contains(kGlobalOnly, id)) {
      if (global) {
        emit(res, f, kCheck, t[i].line,
             "'::" + id + "' is a raw POSIX file operation; only src/spp/io/ "
             "may touch the host filesystem -- route it through io::File");
      }
      continue;
    }
    if (!contains(kBadCalls, id)) continue;
    if (qualified && !global && qualifier != "std") continue;
    emit(res, f, kCheck, t[i].line,
         "call to '" + id + "' bypasses the spp::io seam; only src/spp/io/ "
         "may touch the host filesystem -- route it through io::File / "
         "io::Dir so fault injection and recovery can see it");
  }
}

// ---------------------------------------------------------------------------
// arch-mutation-charged
// ---------------------------------------------------------------------------

/// Machine accessors that charge simulated latency -- the sanctioned way to
/// touch arch state from outside the arch module.
const std::set<std::string> kCharged = {"access", "access_block",
                                        "access_uncached", "atomic_rmw",
                                        "flush_l1", "allocate"};
/// Cold-path host/recovery controls: legal, but inventoried because the
/// PDES engine routes them between shards explicitly (set_gate and
/// fold_shard_counters are the engine's own serialized attach points).
const std::set<std::string> kControl = {
    "reset_stats",    "power_cycle",        "set_observer",
    "set_link_alive", "set_link_degrade",   "set_gate",
    "fold_shard_counters"};

/// Names that denote an arch::Machine in this codebase (locals, members,
/// and the ubiquitous `machine()` accessor on sim state).
bool is_machine_receiver(const std::vector<Token>& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& id = t[i].text;
  if (id != "machine" && id != "machine_" && id != "mach") return false;
  // Qualified names (arch::machine) and member names after ./-> still count:
  // `st.machine().perf()` reaches the machine either way.  But skip the
  // *declaration* `Machine& machine` (prev token is `&` or an ident).
  if (i > 0 && t[i - 1].kind == Token::Kind::kIdent) return false;
  return true;
}

/// Walks a postfix chain starting after the receiver at `i` (which may be a
/// call: `machine()`), collecting member names until the chain ends.
/// Returns the index one past the chain.
std::size_t walk_chain(const std::vector<Token>& t, std::size_t i,
                       std::vector<std::pair<std::string, int>>& members) {
  std::size_t j = i + 1;
  while (j < t.size()) {
    if (t[j].kind == Token::Kind::kPunct && t[j].text == "(") {
      int depth = 1;
      ++j;
      while (j < t.size() && depth > 0) {
        if (t[j].kind == Token::Kind::kPunct) {
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")") --depth;
        }
        ++j;
      }
      continue;
    }
    if (t[j].kind == Token::Kind::kPunct &&
        (t[j].text == "." || t[j].text == "->") && j + 1 < t.size() &&
        t[j + 1].kind == Token::Kind::kIdent) {
      members.emplace_back(t[j + 1].text, t[j + 1].line);
      j += 2;
      continue;
    }
    break;
  }
  return j;
}

/// Records perf-counter aliases: `arch::PerfCounters& perf = ...;` and
/// `auto& perf = <chain>.perf();` both make `perf.loads++` a counter bump.
void collect_perf_aliases(const std::vector<Token>& t,
                          std::set<std::string>& aliases) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    const bool typed = t[i].kind == Token::Kind::kIdent &&
                       t[i].text == "PerfCounters";
    const bool deduced = t[i].kind == Token::Kind::kIdent &&
                         t[i].text == "auto";
    if (!typed && !deduced) continue;
    if (!(t[i + 1].kind == Token::Kind::kPunct && t[i + 1].text == "&"))
      continue;
    if (t[i + 2].kind != Token::Kind::kIdent) continue;
    if (!(t[i + 3].kind == Token::Kind::kPunct && t[i + 3].text == "="))
      continue;
    if (deduced) {
      // Only an alias if the initializer ends in `.perf()`.
      bool ends_in_perf = false;
      for (std::size_t j = i + 4; j < t.size(); ++j) {
        if (t[j].kind == Token::Kind::kPunct && t[j].text == ";") break;
        if (t[j].kind == Token::Kind::kIdent && t[j].text == "perf" &&
            j + 1 < t.size() && t[j + 1].kind == Token::Kind::kPunct &&
            t[j + 1].text == "(") {
          ends_in_perf = true;
        }
      }
      if (!ends_in_perf) continue;
    }
    aliases.insert(t[i + 2].text);
  }
}

/// Classifies what follows a counter-field chain end: ++/--/+=/-= is an
/// accumulation, plain = is an uncharged overwrite, anything else a read.
enum class WriteKind { kNone, kAccum, kAssign };
WriteKind write_after(const std::vector<Token>& t, std::size_t chain_end,
                      std::size_t recv, bool* prefix_incr) {
  *prefix_incr = false;
  if (recv > 0 && t[recv - 1].kind == Token::Kind::kPunct &&
      (t[recv - 1].text == "++" || t[recv - 1].text == "--")) {
    *prefix_incr = true;
    return WriteKind::kAccum;
  }
  if (chain_end >= t.size() || t[chain_end].kind != Token::Kind::kPunct)
    return WriteKind::kNone;
  const std::string& p = t[chain_end].text;
  if (p == "++" || p == "--" || p == "+=" || p == "-=") return WriteKind::kAccum;
  if (p == "=") return WriteKind::kAssign;
  return WriteKind::kNone;
}

void check_arch_mutation(const SourceFile& f, Result& res) {
  static const char kCheck[] = "arch-mutation-charged";
  // Inside the arch module, state mutation is the module's own business;
  // tests may use the test-mutation hook by design.
  if (!starts_with(f.path, "src/")) return;
  if (starts_with(f.path, "src/spp/arch/")) return;
  const std::string module = module_of(f.path);

  const auto& t = f.toks;
  std::set<std::string> perf_aliases;
  collect_perf_aliases(t, perf_aliases);

  auto record = [&](int line, const std::string& expr,
                    const std::string& kind) {
    res.sites.push_back({f.path, line, module, expr, kind});
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Perf-alias writes: `perf.loads += n;`
    if (t[i].kind == Token::Kind::kIdent && perf_aliases.count(t[i].text) &&
        !(i > 0 && t[i - 1].kind == Token::Kind::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->")) &&
        i + 1 < t.size() && t[i + 1].kind == Token::Kind::kPunct &&
        (t[i + 1].text == "." || t[i + 1].text == "->")) {
      std::vector<std::pair<std::string, int>> members;
      std::size_t end = walk_chain(t, i, members);
      if (!members.empty()) {
        bool prefix = false;
        WriteKind w = write_after(t, end, i, &prefix);
        const auto& [field, line] = members.back();
        if (w == WriteKind::kAccum) {
          record(line, field, "counter");
        } else if (w == WriteKind::kAssign) {
          record(line, field, "uncharged");
          emit(res, f, kCheck, line,
               "plain '=' overwrite of perf counter '" + field +
                   "'; counters accumulate (++/+=) so resume and digest "
                   "replay stay exact -- or go through "
                   "Machine::reset_stats()");
        }
        i = end - 1;
      }
      continue;
    }

    if (!is_machine_receiver(t, i)) continue;
    std::vector<std::pair<std::string, int>> members;
    std::size_t end = walk_chain(t, i, members);
    if (members.empty()) continue;

    bool in_perf = false;
    bool classified = false;
    for (std::size_t m = 0; m < members.size() && !classified; ++m) {
      const auto& [name, line] = members[m];
      if (kCharged.count(name) != 0) {
        record(line, name, "charged");
        classified = true;
      } else if (kControl.count(name) != 0) {
        record(line, name, "control");
        classified = true;
      } else if (name == "set_test_mutation") {
        record(line, name, "forbidden");
        emit(res, f, kCheck, line,
             "'set_test_mutation' injects protocol corruption; it is a "
             "tests-only hook and must not be reachable from simulation "
             "code");
        classified = true;
      } else if (name == "perf") {
        in_perf = true;
      } else if (in_perf && m + 1 == members.size()) {
        // Last member after .perf(): a counter field.
        bool prefix = false;
        WriteKind w = write_after(t, end, i, &prefix);
        if (w == WriteKind::kAccum) {
          record(line, name, "counter");
        } else if (w == WriteKind::kAssign) {
          record(line, name, "uncharged");
          emit(res, f, kCheck, line,
               "plain '=' overwrite of perf counter '" + name +
                   "'; counters accumulate (++/+=) so resume and digest "
                   "replay stay exact -- or go through "
                   "Machine::reset_stats()");
        }
        classified = true;
      }
    }
    i = end - 1;
  }
}

// ---------------------------------------------------------------------------
// cross-shard-event-queue
// ---------------------------------------------------------------------------

void check_cross_shard(const SourceFile& f, Result& res) {
  static const char kCheck[] = "cross-shard-event-queue";
  // Under the sharded PDES engine every hypernode's slice of machine state
  // (its home-directory map, its gcaches, the engine gate) is single-writer
  // within a phase.  The one sanctioned way to affect another shard is the
  // conductor's per-shard SPSC event queue, entered through arch::CrossGate.
  // Only the engine itself (src/spp/pdes/, src/spp/rt/) and arch may touch
  // these; a direct reach from anywhere else would mutate a foreign shard
  // behind the workers' backs.
  if (!starts_with(f.path, "src/")) return;  // tools/ and tests/ are host code.
  if (starts_with(f.path, "src/spp/arch/") ||
      starts_with(f.path, "src/spp/rt/") ||
      starts_with(f.path, "src/spp/pdes/")) {
    return;
  }

  /// Machine members that address one shard's slice of coherence state, plus
  /// the engine attach points.  Reaching them from outside the engine skips
  /// the event-queue serialization.
  static const std::set<std::string> kShardOwned = {
      "home_entry", "dir_for",           "gcache_for", "directory_",
      "gcaches_",   "fold_shard_counters", "set_gate"};

  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (t[i].text == "SpscQueue") {
      emit(res, f, kCheck, t[i].line,
           "'SpscQueue' is the PDES engine's cross-shard event channel; only "
           "src/spp/pdes/ and src/spp/rt/ may own shard queues -- route "
           "cross-shard effects through arch::CrossGate so they serialize at "
           "the fusion rendezvous");
      continue;
    }
    if (!is_machine_receiver(t, i)) continue;
    std::vector<std::pair<std::string, int>> members;
    std::size_t end = walk_chain(t, i, members);
    for (const auto& [name, line] : members) {
      if (kShardOwned.count(name) == 0) continue;
      emit(res, f, kCheck, line,
           "'" + name + "' reaches shard-owned machine state directly; "
           "outside the PDES engine, cross-shard mutation must go through "
           "the conductor's per-shard event queues (arch::CrossGate), not "
           "behind the phase workers' backs");
      break;
    }
    i = end - 1;
  }
}

// ---------------------------------------------------------------------------
// memo-no-uncharged-mutation
// ---------------------------------------------------------------------------

void check_memo_mutation(const SourceFile& f, Result& res) {
  static const char kCheck[] = "memo-no-uncharged-mutation";
  // Replay's correctness argument (docs/PERFORMANCE.md "Trace memoization")
  // is that fast-forwarding a memo has exactly one effect on the machine:
  // the recorded PerfCounters delta applied through the bulk-apply surface.
  // If the memo engine could reach any other Machine mutator, a replay
  // could change coherence state without charging it to the trace, and the
  // digest-equivalence guarantee memoization rests on would be silently
  // broken.  So src/spp/memo/ is held to an allowlist: the bulk-apply and
  // scratch/sink attach points plus const topology/cache/invariant queries.
  if (!starts_with(f.path, "src/spp/memo/")) return;

  static const std::set<std::string> kSanctioned = {
      // Bulk-apply surface: the only way a replay touches machine state.
      "apply_memo_delta",
      // Engine attach points (recording taps and lifecycle).
      "set_memo_sink", "set_memo_scratch",
      // Const queries: no coherence transitions, nothing charged.
      "topo", "cost", "l1", "check_line_invariants_line"};

  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_machine_receiver(t, i)) continue;
    std::vector<std::pair<std::string, int>> members;
    std::size_t end = walk_chain(t, i, members);
    if (!members.empty()) {
      // Judge the first member: it decides which Machine surface the chain
      // enters (later members act on what that surface returned).
      const auto& [name, line] = members.front();
      if (kSanctioned.count(name) == 0) {
        emit(res, f, kCheck, line,
             "'" + name + "' reaches arch::Machine from src/spp/memo/; the "
             "memo engine may only touch the machine through the sanctioned "
             "bulk-apply surface (apply_memo_delta, set_memo_sink / "
             "set_memo_scratch, const topo/cost/l1/"
             "check_line_invariants_line queries) -- anything else could "
             "mutate coherence state without charging it to a replayed "
             "trace");
      }
    }
    i = end - 1;
  }
}

// ---------------------------------------------------------------------------
// digest-iter-determinism
// ---------------------------------------------------------------------------

struct FuncDef {
  std::string name;
  const SourceFile* file;
  std::size_t body_begin;  ///< index of the opening `{`
  std::size_t body_end;    ///< index one past the matching `}`
};

/// Skips a balanced token group starting at `i` (which must be open).
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  while (i < t.size()) {
    if (t[i].kind == Token::Kind::kPunct) {
      if (t[i].text == open) ++depth;
      if (t[i].text == close && --depth == 0) return i + 1;
    }
    ++i;
  }
  return i;
}

/// Extracts function definitions: `ident ( ... ) [specifiers|ctor-inits] {`.
void collect_defs(const SourceFile& f, std::vector<FuncDef>& defs) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || is_keyword(t[i].text)) continue;
    if (!(t[i + 1].kind == Token::Kind::kPunct && t[i + 1].text == "("))
      continue;
    std::size_t after = skip_balanced(t, i + 1, "(", ")");
    if (after >= t.size()) continue;

    // Scan past trailing specifiers / ctor init list to find the body `{`,
    // bailing on anything that marks a declaration or expression instead.
    std::size_t j = after;
    bool is_def = false;
    bool in_inits = false;
    int guard = 0;
    while (j < t.size() && guard++ < 256) {
      const Token& tok = t[j];
      if (tok.kind == Token::Kind::kPunct) {
        if (tok.text == ";" || tok.text == ",") {
          if (!in_inits) break;
          ++j;
          continue;
        }
        if (tok.text == "=") break;  // `= default` / assignment expr.
        if (tok.text == ":" && j == after) {
          in_inits = true;  // ctor init list
          ++j;
          continue;
        }
        if (tok.text == "{") {
          // In an init list, `{` after an identifier or `>` is a braced
          // initializer (`b_{2}`); skip it.  After `)` or `}` it's the body.
          const Token& prev = t[j - 1];
          if (in_inits && (prev.kind == Token::Kind::kIdent ||
                           (prev.kind == Token::Kind::kPunct &&
                            prev.text == ">"))) {
            j = skip_balanced(t, j, "{", "}");
            continue;
          }
          is_def = true;
          break;
        }
        if (tok.text == "(") {  // noexcept(...) / initializer `a_(1)`
          j = skip_balanced(t, j, "(", ")");
          continue;
        }
        ++j;
        continue;
      }
      if (tok.kind == Token::Kind::kIdent) {
        static const std::set<std::string> kSpecifiers = {
            "const", "noexcept", "override", "final", "try", "mutable",
            "volatile", "requires"};
        if (!in_inits && kSpecifiers.count(tok.text) == 0 &&
            !(j > after && t[j - 1].kind == Token::Kind::kPunct &&
              (t[j - 1].text == "->" || t[j - 1].text == "::"))) {
          // `foo() bar` -- not a definition (e.g. a macro invocation).
          break;
        }
        ++j;
        continue;
      }
      ++j;
    }
    if (!is_def) continue;
    std::size_t body_end = skip_balanced(t, j, "{", "}");
    defs.push_back({t[i].text, &f, j, body_end});
    // Don't skip the body: nested lambdas/local funcs are rare and calls
    // inside this body are collected from the def record, not rescanned.
  }
}

/// Declared names of unordered containers, across the whole tree (name-level
/// over-approximation: any range-for over one of these names is suspect).
void collect_unordered_names(const SourceFile& f, std::set<std::string>& out) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        !starts_with(t[i].text, "unordered_")) {
      continue;
    }
    // Skip the template argument list, then take the declared name.
    std::size_t j = i + 1;
    if (j < t.size() && t[j].kind == Token::Kind::kPunct && t[j].text == "<") {
      int depth = 0;
      while (j < t.size()) {
        if (t[j].kind == Token::Kind::kPunct) {
          if (t[j].text == "<") ++depth;
          if (t[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
          if (t[j].text == ">>" && depth >= 2) {
            depth -= 2;
            if (depth == 0) {
              ++j;
              break;
            }
          }
          if (t[j].text == ";") break;  // lost track; give up on this one.
        }
        ++j;
      }
    }
    if (j < t.size() && t[j].kind == Token::Kind::kIdent) {
      out.insert(t[j].text);
    }
  }
}

void check_digest_iter(const std::vector<SourceFile>& files, Result& res) {
  static const char kCheck[] = "digest-iter-determinism";

  std::vector<FuncDef> defs;
  std::map<const SourceFile*, std::set<std::string>> own_names;
  for (const auto& f : files) {
    collect_defs(f, defs);
    collect_unordered_names(f, own_names[&f]);
  }
  // Name matching is scoped to the file plus its included headers: a
  // `threads_` that is an unordered_map in check/race.h must not taint an
  // unrelated `threads_` vector in rt/conductor.cc that never includes it.
  std::map<const SourceFile*, std::set<std::string>> visible;
  for (const auto& f : files) {
    std::set<std::string>& vis = visible[&f];
    vis = own_names[&f];
    for (const auto& [inc, line] : f.includes) {
      (void)line;
      for (const auto& g : files) {
        if (g.path == inc ||
            (g.path.size() > inc.size() + 1 &&
             g.path.compare(g.path.size() - inc.size() - 1, inc.size() + 1,
                            "/" + inc) == 0)) {
          vis.insert(own_names[&g].begin(), own_names[&g].end());
        }
      }
    }
    // The container *types* themselves always make the expression suspect
    // (an `unordered_map<...>{...}` temp in the range position).
    for (const char* n : {"unordered_map", "unordered_set",
                          "unordered_multimap", "unordered_multiset"}) {
      vis.insert(n);
    }
  }

  // Name-level call graph: def name -> names of functions it calls.
  std::map<std::string, std::set<std::string>> calls;
  for (const auto& d : defs) {
    const auto& t = d.file->toks;
    auto& out = calls[d.name];
    for (std::size_t i = d.body_begin; i + 1 < d.body_end && i < t.size();
         ++i) {
      if (t[i].kind == Token::Kind::kIdent && !is_keyword(t[i].text) &&
          t[i + 1].kind == Token::Kind::kPunct && t[i + 1].text == "(") {
        out.insert(t[i].text);
      }
    }
  }

  // Functions reachable from the determinism oracles.  digest() hashes the
  // counters and capture() snapshots memory: any hash-order-dependent
  // iteration under them silently varies the digest across hosts.
  std::set<std::string> reachable;
  std::vector<std::string> work = {"digest", "capture"};
  while (!work.empty()) {
    std::string fn = work.back();
    work.pop_back();
    if (!reachable.insert(fn).second) continue;
    auto it = calls.find(fn);
    if (it == calls.end()) continue;
    for (const auto& callee : it->second) {
      if (reachable.count(callee) == 0) work.push_back(callee);
    }
  }

  // Flag range-for over an unordered container inside a reachable body.
  for (const auto& d : defs) {
    if (reachable.count(d.name) == 0) continue;
    const std::set<std::string>& unordered_names = visible[d.file];
    const auto& t = d.file->toks;
    for (std::size_t i = d.body_begin; i < d.body_end && i < t.size(); ++i) {
      if (!(t[i].kind == Token::Kind::kIdent && t[i].text == "for")) continue;
      if (!(i + 1 < t.size() && t[i + 1].kind == Token::Kind::kPunct &&
            t[i + 1].text == "(")) {
        continue;
      }
      std::size_t close = skip_balanced(t, i + 1, "(", ")");
      // Find a top-level `:` (range-for separator; `::` is its own token).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (t[j].kind != Token::Kind::kPunct) continue;
        if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
        if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
        if (t[j].text == ":" && depth == 0) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;  // classic for loop
      for (std::size_t j = colon + 1; j + 1 < close; ++j) {
        if (t[j].kind == Token::Kind::kIdent &&
            unordered_names.count(t[j].text) != 0) {
          emit(res, *d.file, kCheck, t[j].line,
               "range-for over unordered container '" + t[j].text +
                   "' in '" + d.name + "', which is reachable from "
                   "PerfCounters::digest / ckpt::Store::capture; hash order "
                   "varies across hosts and libstdc++ versions -- iterate a "
                   "sorted copy or use FlatMap/std::map");
          break;
        }
      }
    }
  }
}

}  // namespace

Result run_checks(const std::vector<SourceFile>& files) {
  Result res;
  for (const auto& f : files) {
    check_wallclock(f, res);
    check_host_thread(f, res);
    check_posix_io(f, res);
    check_arch_mutation(f, res);
    check_cross_shard(f, res);
    check_memo_mutation(f, res);
  }
  check_digest_iter(files, res);

  std::sort(res.findings.begin(), res.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  std::sort(res.sites.begin(), res.sites.end(),
            [](const MutationSite& a, const MutationSite& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return res;
}

std::string sites_to_json(const std::vector<MutationSite>& sites) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream os;
  os << "{\n  \"generated_by\": \"spp-lint\",\n  \"schema\": 1,\n"
     << "  \"sites\": [";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& s = sites[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << escape(s.file) << "\", \"line\": " << s.line
       << ", \"module\": \"" << escape(s.module) << "\", \"kind\": \""
       << escape(s.kind) << "\", \"expr\": \"" << escape(s.expr) << "\"}";
  }
  os << (sites.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

}  // namespace spplint
