#include "lexer.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace spplint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first so maximal munch works.  Only
/// the ones the checks distinguish matter (`==` vs `=`, `::`, `->`, `++`,
/// compound assignments); everything else can fall through to single chars.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  ".*",
};

/// Parses a comment body for spp-lint directives.
void scan_comment(const std::string& body, int line, SourceFile& out) {
  // `spp-lint: allow(check-a, check-b): free-form reason`
  const std::string kAllow = "spp-lint: allow(";
  std::size_t pos = body.find(kAllow);
  if (pos != std::string::npos) {
    std::size_t open = pos + kAllow.size();
    std::size_t close = body.find(')', open);
    if (close != std::string::npos) {
      std::string inner = body.substr(open, close - open);
      std::string id;
      auto flush = [&] {
        if (!id.empty()) out.allows[line].insert(id);
        id.clear();
      };
      for (char c : inner) {
        if (c == ',' || c == ' ' || c == '\t') {
          flush();
        } else {
          id += c;
        }
      }
      flush();
    }
  }
  // `spp-lint-fixture: key rest-of-line-value`
  const std::string kFixture = "spp-lint-fixture:";
  pos = body.find(kFixture);
  if (pos != std::string::npos) {
    std::size_t p = pos + kFixture.size();
    while (p < body.size() && (body[p] == ' ' || body[p] == '\t')) ++p;
    std::size_t key_end = p;
    while (key_end < body.size() && body[key_end] != ' ' &&
           body[key_end] != '\t' && body[key_end] != '\n') {
      ++key_end;
    }
    std::string key = body.substr(p, key_end - p);
    std::size_t v = key_end;
    while (v < body.size() && (body[v] == ' ' || body[v] == '\t')) ++v;
    std::size_t v_end = body.find('\n', v);
    if (v_end == std::string::npos) v_end = body.size();
    while (v_end > v && (body[v_end - 1] == ' ' || body[v_end - 1] == '\r')) {
      --v_end;
    }
    if (!key.empty()) out.directives.emplace_back(key, body.substr(v, v_end - v));
  }
}

}  // namespace

SourceFile lex_string(const std::string& src, const std::string& display_path) {
  SourceFile out;
  out.path = display_path;

  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline.

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(src.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = src.substr(i, end - i);
      scan_comment(body, line, out);
      for (char bc : body) {
        if (bc == '\n') ++line;
      }
      i = (end == n) ? n : end + 2;
      continue;
    }

    // Preprocessor directive: consume the logical line (with \-continuations),
    // recording #include targets.  Directive bodies produce no tokens.
    if (c == '#' && at_line_start) {
      std::size_t j = i;
      std::string dline;
      while (j < n) {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          j += 2;
          ++line;
          continue;
        }
        if (src[j] == '\n') break;
        dline += src[j];
        ++j;
      }
      // Extract `include <name>` / `include "name"`.
      std::size_t p = 1;  // past '#'
      while (p < dline.size() && (dline[p] == ' ' || dline[p] == '\t')) ++p;
      if (dline.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < dline.size() && (dline[p] == ' ' || dline[p] == '\t')) ++p;
        if (p < dline.size() && (dline[p] == '<' || dline[p] == '"')) {
          const char close = dline[p] == '<' ? '>' : '"';
          std::size_t q = dline.find(close, p + 1);
          if (q != std::string::npos) {
            out.includes.emplace_back(dline.substr(p + 1, q - p - 1), line);
          }
        }
      }
      i = j;
      continue;
    }
    at_line_start = false;

    // Raw string literal: (u8|u|U|L)? R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && delim.size() < 16) delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.toks.push_back({Token::Kind::kString, "<raw-string>", line});
      i = (end == n) ? n : end + closer.size();
      continue;
    }

    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane.
        ++j;
      }
      out.toks.push_back({Token::Kind::kString,
                          c == '"' ? "<string>" : "<char>", start_line});
      i = (j < n) ? j + 1 : n;
      continue;
    }

    // Identifier / keyword.  A prefixed string (u8"...", L"...") lexes as
    // ident+string, which is fine for our purposes.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      out.toks.push_back({Token::Kind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Number (pp-number: digits, ., ', exponent signs, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t j = i + 1;
      while (j < n &&
             (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
              ((src[j] == '+' || src[j] == '-') &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P')))) {
        ++j;
      }
      out.toks.push_back({Token::Kind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuator: longest match from the table, else one char.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        out.toks.push_back({Token::Kind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

SourceFile lex_file(const std::string& fs_path,
                    const std::string& display_path) {
  std::FILE* f = std::fopen(fs_path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("spp-lint: cannot open " + fs_path);
  }
  std::string content;
  char buf[65536];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return lex_string(content, display_path);
}

}  // namespace spplint
