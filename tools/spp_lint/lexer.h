// Token-level C++ front end for spp-lint (docs/STATIC_ANALYSIS.md).
//
// spp-lint's checks are *discipline* checks -- "no wall-clock in simulated
// code", "arch state mutates only through charged accessors" -- that key off
// identifiers, include directives, and small token shapes, not off types or
// overload resolution.  A faithful lexer is therefore enough: it must get
// comments, string/char literals (including raw strings), preprocessor
// lines, and multi-character operators exactly right so that a forbidden
// name inside a string literal is never flagged and a `==` is never
// mistaken for an assignment.  This keeps the tool dependency-free (the CI
// image has no libclang dev headers); the check logic in lint.cc is written
// against this token interface so a clang LibTooling front end can replace
// it file-for-file where LLVM dev packages exist.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace spplint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line;
};

/// One analyzed file: its token stream plus the side tables the checks need.
struct SourceFile {
  /// Repo-relative path with forward slashes; checks scope on its prefix.
  /// Fixtures override it with a `// spp-lint-fixture: as-path` directive.
  std::string path;
  std::vector<Token> toks;
  /// #include targets in order: ("chrono", line), ("spp/rt/fiber.h", line).
  std::vector<std::pair<std::string, int>> includes;
  /// Lines carrying `// spp-lint: allow(<check>): reason` comments.  A
  /// finding on the same line or the line directly below is suppressed.
  std::map<int, std::set<std::string>> allows;
  /// Fixture directives (`// spp-lint-fixture: key value`), in order.
  std::vector<std::pair<std::string, std::string>> directives;
};

/// Lexes `content` as C++; `display_path` seeds SourceFile::path.
SourceFile lex_string(const std::string& content,
                      const std::string& display_path);

/// Reads and lexes a file; throws std::runtime_error on I/O failure.
SourceFile lex_file(const std::string& fs_path,
                    const std::string& display_path);

}  // namespace spplint
