// spp-lint check engine (docs/STATIC_ANALYSIS.md).
//
// Seven project-specific checks over the token streams lexer.h produces:
//
//   sim-no-wallclock        no wall-clock or entropy sources in simulated
//                           code (allowlist: rt::Watchdog, ckpt::Disk,
//                           spp::io backoff, and everything outside src/)
//   sim-no-host-thread      no host threading primitives outside
//                           src/spp/rt/, src/spp/pdes/, and src/spp/ckpt/
//   posix-file-io           no raw POSIX/stdio file APIs outside
//                           src/spp/io/ -- every host file operation in
//                           simulated code routes through the io::File /
//                           io::Dir seam so fault injection sees it
//   arch-mutation-charged   cross-module mutations of arch::Machine state
//                           must be charged accessors (or accumulating
//                           counter bumps / cold-path control calls, which
//                           are inventoried); emits the full site inventory
//                           as JSON -- the cross-shard mutation list the
//                           ROADMAP item 1 event-queue refactor needs
//   digest-iter-determinism flags range-for over unordered containers in
//                           functions reachable from PerfCounters::digest
//                           or ckpt::Store::capture
//   cross-shard-event-queue outside the PDES engine (src/spp/pdes/,
//                           src/spp/rt/) and arch itself, code must not
//                           reach shard-owned machine state (per-node
//                           directory maps, gcaches, the engine gate)
//                           directly, nor own pdes::SpscQueue channels;
//                           cross-shard effects route through the
//                           conductor's per-shard event queues via
//                           arch::CrossGate
//   memo-no-uncharged-mutation
//                           src/spp/memo/ may not mutate arch::Machine
//                           except through the sanctioned bulk-apply
//                           surface (Machine::apply_memo_delta plus the
//                           set_memo_sink / set_memo_scratch attach points
//                           and const queries); a replay must never change
//                           coherence state it did not charge to the trace
//
// Suppression: a `// spp-lint: allow(<check>): reason` comment on the same
// line or the line above a finding silences it; fixtures under
// tests/lint_fixtures/ prove every check still fires on seeded violations.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace spplint {

struct Finding {
  std::string check;
  std::string file;
  int line;
  std::string message;
};

/// One cross-module arch-state mutation site (JSON inventory entry).
struct MutationSite {
  std::string file;
  int line;
  std::string module;  ///< "rt", "pvm", "apps", "tools", ...
  std::string expr;    ///< accessor name or mutated counter field.
  /// "charged"   -- goes through a latency-charging Machine accessor.
  /// "counter"   -- accumulating PerfCounters bump (++ / += / -=).
  /// "control"   -- cold-path host/recovery control (reset_stats,
  ///                power_cycle, set_observer, ring health).
  /// "forbidden" -- test-only protocol mutation outside tests/ (violation).
  /// "uncharged" -- anything else, e.g. a plain `=` on machine state
  ///                (violation).
  std::string kind;
};

struct Result {
  std::vector<Finding> findings;
  std::vector<MutationSite> sites;
};

/// Runs all seven checks over `files` (one entry per analyzed file; the
/// digest-iter-determinism call graph spans all of them).
Result run_checks(const std::vector<SourceFile>& files);

/// Serializes the mutation inventory as pretty-printed JSON.
std::string sites_to_json(const std::vector<MutationSite>& sites);

}  // namespace spplint
